//! Cycle-stepped simulation of a mapped network with link contention.
//!
//! Extends the quota-spread firing semantics of
//! [`ppn_model::simulate`] with a transport stage: tokens produced on a
//! channel whose endpoints live on *different* FPGAs first enter a
//! per-channel transit queue; each cycle, every FPGA pair's link moves
//! at most `bmax` tokens (round-robin over the channels sharing the
//! link) from transit queues into the destination FIFOs. Intra-FPGA
//! channels deliver instantly.
//!
//! This is the executable argument for the paper's bandwidth constraint:
//! a mapping whose pairwise traffic stays under `bmax` suffers only a
//! bounded slowdown versus the infinite-bandwidth baseline, while a
//! METIS-style mapping that saturates one link serialises on it.

use crate::mapping::Mapping;
use crate::platform::Platform;
use ppn_model::{ProcessId, ProcessNetwork};
use serde::{Deserialize, Serialize};

/// Options for [`simulate_mapped`].
#[derive(Clone, Debug)]
pub struct SystemOptions {
    /// Hard cycle limit.
    pub max_cycles: u64,
}

impl Default for SystemOptions {
    fn default() -> Self {
        SystemOptions {
            max_cycles: 10_000_000,
        }
    }
}

/// Result of a mapped-system simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Cycles until completion (or cutoff).
    pub cycles: u64,
    /// Completed firings per process.
    pub fired: Vec<u64>,
    /// True when every process finished its firings.
    pub completed: bool,
    /// True on dataflow deadlock.
    pub deadlocked: bool,
    /// Tokens moved per FPGA pair (indexed `a * k + b`, symmetric).
    pub link_tokens: Vec<u64>,
    /// Highest per-link utilisation: tokens / (bmax · cycles).
    pub max_link_utilization: f64,
    /// Total firings per cycle.
    pub throughput: f64,
}

#[inline]
fn quota(volume: u64, firings: u64, idx: u64) -> u64 {
    if firings == 0 {
        return 0;
    }
    let (v, f, i) = (volume as u128, firings as u128, idx as u128);
    (((i + 1) * v / f) - (i * v / f)) as u64
}

/// Simulate `net` mapped onto `platform` by `mapping`.
///
/// Multicast channels are flattened first (each consumer gets its own
/// FIFO cursor, see [`ProcessNetwork::expand_multicast_with_origin`]),
/// but clones carrying the *same* stream to the *same* destination FPGA
/// share one link transport: the stream crosses each boundary once,
/// matching the once-per-boundary charging of
/// [`Mapping::traffic_matrix`] and the `ppn-hyper` connectivity model.
/// For multicast networks the per-channel vectors in the report are
/// indexed by the expanded channel list.
pub fn simulate_mapped(
    net: &ProcessNetwork,
    mapping: &Mapping,
    platform: &Platform,
    opts: &SystemOptions,
) -> SystemReport {
    let expanded;
    let origin;
    let net = if net.has_multicast() {
        let (flat, map) = net.expand_multicast_with_origin();
        expanded = flat;
        origin = map;
        &expanded
    } else {
        origin = (0..net.num_channels() as u32).collect();
        net
    };
    net.validate().expect("network must validate");
    assert_eq!(mapping.assign.len(), net.num_processes());
    assert_eq!(mapping.k, platform.k());
    let np = net.num_processes();
    let nc = net.num_channels();
    let k = platform.k();

    let inputs: Vec<Vec<usize>> = net
        .process_ids()
        .map(|p| net.inputs_of(p).iter().map(|c| c.index()).collect())
        .collect();
    let outputs: Vec<Vec<usize>> = net
        .process_ids()
        .map(|p| net.outputs_of(p).iter().map(|c| c.index()).collect())
        .collect();
    let chan = |c: usize| net.channel(ppn_model::ChannelId(c as u32));
    let cross: Vec<Option<(usize, usize)>> = (0..nc)
        .map(|c| {
            let ch = chan(c);
            let (a, b) = (
                mapping.fpga_of(ch.from.index()),
                mapping.fpga_of(ch.to.index()),
            );
            if a == b {
                None
            } else {
                Some((a.min(b), a.max(b)))
            }
        })
        .collect();
    let volume: Vec<u64> = (0..nc).map(|c| chan(c).volume).collect();
    let prod_f: Vec<u64> = (0..nc).map(|c| net.process(chan(c).from).firings).collect();
    let cons_f: Vec<u64> = (0..nc).map(|c| net.process(chan(c).to).firings).collect();

    // transport groups: cross-FPGA legs of the same original stream
    // with the same destination FPGA move in lockstep over one budget
    // charge (their transit queues are identical by construction —
    // same producer, same quota schedule)
    let mut stream_groups: Vec<Vec<usize>> = Vec::new();
    {
        let mut by_key: std::collections::HashMap<(u32, usize), usize> =
            std::collections::HashMap::new();
        for c in 0..nc {
            if cross[c].is_none() {
                continue;
            }
            let dest = mapping.fpga_of(chan(c).to.index());
            match by_key.entry((origin[c], dest)) {
                std::collections::hash_map::Entry::Occupied(g) => {
                    stream_groups[*g.get()].push(c);
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(stream_groups.len());
                    stream_groups.push(vec![c]);
                }
            }
        }
    }

    let mut fifo: Vec<u64> = (0..nc).map(|c| chan(c).initial_tokens).collect();
    let mut transit: Vec<u64> = vec![0; nc];
    let mut reserved: Vec<u64> = vec![0; nc];
    let mut pending_out: Vec<Vec<u64>> = (0..np).map(|p| vec![0; outputs[p].len()]).collect();
    let mut fired = vec![0u64; np];
    let mut started = vec![0u64; np];
    let mut remaining: Vec<u64> = net.process_ids().map(|p| net.process(p).firings).collect();
    let mut busy_until: Vec<Option<u64>> = vec![None; np];
    let mut link_tokens = vec![0u64; k * k];
    let mut rr_offset = 0usize; // round-robin fairness over channels

    let mut deadlocked = false;
    let mut t: u64 = 0;
    while t < opts.max_cycles {
        // 1. firing completions
        for p in 0..np {
            if busy_until[p] == Some(t) {
                busy_until[p] = None;
                fired[p] += 1;
                for (oi, &c) in outputs[p].iter().enumerate() {
                    let q = pending_out[p][oi];
                    match cross[c] {
                        None => {
                            // space was reserved at firing start
                            reserved[c] -= q;
                            fifo[c] += q;
                        }
                        Some(_) => transit[c] += q,
                    }
                    pending_out[p][oi] = 0;
                }
            }
        }

        // 2. link transport: per-pair budget, round-robin over stream
        // groups; all legs of a group advance together (broadcast
        // backpressure: the shared stream stalls until every receiver
        // on that FPGA has space)
        let mut budget = vec![platform.bmax; k * k];
        let ng = stream_groups.len();
        for step in 0..ng {
            let g = &stream_groups[(step + rr_offset) % ng];
            let lead = g[0];
            let (a, b) = cross[lead].expect("groups hold cross channels only");
            debug_assert!(g.iter().all(|&c| transit[c] == transit[lead]));
            if transit[lead] == 0 {
                continue;
            }
            let space = g
                .iter()
                .map(|&c| chan(c).capacity.saturating_sub(fifo[c] + reserved[c]))
                .min()
                .unwrap();
            let pair = a * k + b;
            let move_n = transit[lead].min(budget[pair]).min(space);
            if move_n > 0 {
                for &c in g {
                    transit[c] -= move_n;
                    fifo[c] += move_n;
                }
                budget[pair] -= move_n;
                link_tokens[pair] += move_n;
                link_tokens[b * k + a] += move_n;
            }
        }
        rr_offset = rr_offset.wrapping_add(1);

        // 3. firing starts (fixpoint within the cycle)
        loop {
            let mut any = false;
            for p in 0..np {
                if busy_until[p].is_some() || remaining[p] == 0 {
                    continue;
                }
                let idx = started[p];
                let can_read = inputs[p]
                    .iter()
                    .all(|&c| fifo[c] >= quota(volume[c], cons_f[c], idx));
                // reserve space in the FIFO (cross-FPGA production is
                // reserved in the destination FIFO once it arrives; the
                // transit queue itself is unbounded, modelling the
                // producer-side DMA buffer)
                let can_write = outputs[p].iter().all(|&c| {
                    let q = quota(volume[c], prod_f[c], idx);
                    match cross[c] {
                        None => fifo[c] + reserved[c] + q <= chan(c).capacity,
                        Some(_) => true,
                    }
                });
                if can_read && can_write {
                    for &c in &inputs[p] {
                        fifo[c] -= quota(volume[c], cons_f[c], idx);
                    }
                    for (oi, &c) in outputs[p].iter().enumerate() {
                        let q = quota(volume[c], prod_f[c], idx);
                        if cross[c].is_none() {
                            reserved[c] += q;
                        }
                        pending_out[p][oi] = q;
                    }
                    started[p] += 1;
                    remaining[p] -= 1;
                    busy_until[p] = Some(t + net.process(ProcessId(p as u32)).latency);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }

        let all_done = remaining.iter().all(|&r| r == 0)
            && busy_until.iter().all(|b| b.is_none())
            && transit.iter().all(|&x| x == 0);
        if all_done {
            break;
        }
        let in_flight = busy_until.iter().any(|b| b.is_some());
        let transiting = transit.iter().any(|&x| x > 0);
        if !in_flight && !transiting {
            if remaining.iter().any(|&r| r > 0) {
                deadlocked = true;
            }
            break;
        }
        t += 1;
    }

    let total: u64 = fired.iter().sum();
    let completed = net
        .process_ids()
        .all(|p| fired[p.index()] == net.process(p).firings);
    let max_link_utilization = if t == 0 || platform.bmax == 0 {
        0.0
    } else {
        let max_tokens = (0..k)
            .flat_map(|a| ((a + 1)..k).map(move |b| (a, b)))
            .map(|(a, b)| link_tokens[a * k + b])
            .max()
            .unwrap_or(0);
        max_tokens as f64 / (platform.bmax as f64 * t as f64)
    };
    SystemReport {
        cycles: t,
        fired,
        completed,
        deadlocked,
        link_tokens,
        max_link_utilization,
        throughput: if t > 0 { total as f64 / t as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::Partition;

    /// Producer → consumer pipeline with one channel of volume V.
    fn pipe(firings: u64) -> ProcessNetwork {
        let mut n = ProcessNetwork::new();
        let a = n.add_simple_process("a", 100, 1, firings);
        let b = n.add_simple_process("b", 100, 1, firings);
        n.add_channel(a, b, firings, 8);
        n
    }

    fn map2(assign: Vec<u32>) -> Mapping {
        Mapping::from_partition(&Partition::from_assignment(assign, 2).unwrap())
    }

    #[test]
    fn colocated_pipeline_matches_base_simulator() {
        let net = pipe(50);
        let platform = Platform::homogeneous(2, 1000, 1);
        let m = map2(vec![0, 0]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.completed, "{r:?}");
        let base = ppn_model::simulate(&net, &ppn_model::SimOptions::default());
        // same pipeline behaviour: within a couple of cycles
        assert!(
            r.cycles.abs_diff(base.cycles) <= 3,
            "{} vs {}",
            r.cycles,
            base.cycles
        );
        assert_eq!(r.link_tokens.iter().sum::<u64>(), 0);
    }

    #[test]
    fn wide_link_adds_bounded_latency() {
        let net = pipe(50);
        let platform = Platform::homogeneous(2, 1000, 10);
        let m = map2(vec![0, 1]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.completed, "{r:?}");
        // 1 token/cycle demand ≤ 10/cycle link: only pipeline fill extra
        assert!(
            r.cycles <= 60,
            "bounded slowdown expected, got {}",
            r.cycles
        );
        assert_eq!(r.link_tokens[1], 50);
    }

    #[test]
    fn saturated_link_serialises_throughput() {
        // producer makes 4 tokens per firing (volume 200 over 50
        // firings) but the link moves only 1 per cycle
        let mut net = ProcessNetwork::new();
        let a = net.add_simple_process("a", 100, 1, 50);
        let b = net.add_simple_process("b", 100, 1, 200);
        net.add_channel(a, b, 200, 16);
        let platform = Platform::homogeneous(2, 1000, 1);
        let m = map2(vec![0, 1]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.completed, "{r:?}");
        // 200 tokens over a 1-token/cycle link: ≥ 200 cycles
        assert!(r.cycles >= 200, "link should bottleneck: {}", r.cycles);
        assert!(r.max_link_utilization > 0.9, "{}", r.max_link_utilization);
    }

    #[test]
    fn faster_link_means_fewer_cycles() {
        // both endpoints fire 50 times, 4 tokens per firing over the
        // link: at bmax 8 the link keeps up (≈ one firing per cycle); at
        // bmax 1 each consumer firing waits 4 cycles for its tokens
        let mk = |bmax: u64| {
            let mut net = ProcessNetwork::new();
            let a = net.add_simple_process("a", 100, 1, 50);
            let b = net.add_simple_process("b", 100, 1, 50);
            net.add_channel(a, b, 200, 32);
            let platform = Platform::homogeneous(2, 1000, bmax);
            let m = map2(vec![0, 1]);
            simulate_mapped(&net, &m, &platform, &SystemOptions::default()).cycles
        };
        let slow = mk(1);
        let fast = mk(8);
        assert!(
            fast * 2 < slow,
            "bmax 8 ({fast}) should clearly beat bmax 1 ({slow})"
        );
    }

    #[test]
    fn deadlock_detection_survives_mapping() {
        let mut net = ProcessNetwork::new();
        let a = net.add_simple_process("a", 10, 1, 5);
        let b = net.add_simple_process("b", 10, 1, 5);
        net.add_channel(a, b, 5, 2);
        net.add_channel(b, a, 5, 2);
        let platform = Platform::homogeneous(2, 1000, 4);
        let m = map2(vec![0, 1]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.deadlocked);
        assert!(!r.completed);
    }

    #[test]
    fn link_tokens_symmetric_and_conserved() {
        let net = pipe(30);
        let platform = Platform::homogeneous(2, 1000, 4);
        let m = map2(vec![0, 1]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert_eq!(r.link_tokens[1], r.link_tokens[2]);
        assert_eq!(r.link_tokens[1], 30);
    }

    #[test]
    fn multicast_network_completes_with_remote_consumers() {
        // producer on FPGA 0 multicasting to one local and two remote
        // consumers: every consumer sees the full stream, but the
        // shared stream crosses the boundary exactly once — agreeing
        // with Mapping::traffic_matrix's once-per-boundary charge
        let mut net = ProcessNetwork::new();
        let p = net.add_simple_process("p", 10, 1, 30);
        let a = net.add_simple_process("a", 10, 1, 30);
        let b = net.add_simple_process("b", 10, 1, 30);
        let c = net.add_simple_process("c", 10, 1, 30);
        net.add_multicast_channel(p, &[a, b, c], 30, 8);
        let platform = Platform::homogeneous(2, 1000, 4);
        let m = Mapping::from_partition(&Partition::from_assignment(vec![0, 0, 1, 1], 2).unwrap());
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.completed, "{r:?}");
        assert_eq!(r.fired, vec![30, 30, 30, 30]);
        assert_eq!(r.link_tokens[1], 30, "one stream, one boundary crossing");
        assert_eq!(
            r.link_tokens[1],
            m.traffic_matrix(&net)[1],
            "simulator and certifier must agree on the transport model"
        );
    }

    #[test]
    fn certified_multicast_mapping_sustains_its_bandwidth() {
        // the reviewer scenario: two consumers behind one boundary,
        // volume 60, bmax 60 — Mapping::check certifies it, so the
        // simulator must show only bounded pipeline-fill slowdown, not
        // the 2x serialisation a per-consumer transport would cause
        let mut net = ProcessNetwork::new();
        let p = net.add_simple_process("p", 10, 1, 60);
        let a = net.add_simple_process("a", 10, 1, 60);
        let b = net.add_simple_process("b", 10, 1, 60);
        net.add_multicast_channel(p, &[a, b], 60, 8);
        let platform = Platform::homogeneous(2, 1000, 60);
        let m = Mapping::from_partition(&Partition::from_assignment(vec![0, 1, 1], 2).unwrap());
        assert!(m.check(&net, &platform, 60).is_feasible());
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.completed, "{r:?}");
        assert_eq!(r.link_tokens[1], 60);
        assert!(
            r.cycles <= 70,
            "1 token/cycle against a 60-token link must not serialise: {}",
            r.cycles
        );
    }
}

//! Cycle-stepped simulation of a mapped network with link contention.
//!
//! Extends the quota-spread firing semantics of
//! [`ppn_model::simulate`] with a transport stage: tokens produced on a
//! channel whose endpoints live on *different* FPGAs first enter a
//! per-channel transit queue; each cycle, every FPGA pair's link moves
//! at most `bmax` tokens (round-robin over the channels sharing the
//! link) from transit queues into the destination FIFOs. Intra-FPGA
//! channels deliver instantly.
//!
//! This is the executable argument for the paper's bandwidth constraint:
//! a mapping whose pairwise traffic stays under `bmax` suffers only a
//! bounded slowdown versus the infinite-bandwidth baseline, while a
//! METIS-style mapping that saturates one link serialises on it.

use crate::mapping::Mapping;
use crate::platform::Platform;
use ppn_model::{ProcessId, ProcessNetwork};
use serde::{Deserialize, Serialize};

/// Options for [`simulate_mapped`].
#[derive(Clone, Debug)]
pub struct SystemOptions {
    /// Hard cycle limit.
    pub max_cycles: u64,
}

impl Default for SystemOptions {
    fn default() -> Self {
        SystemOptions {
            max_cycles: 10_000_000,
        }
    }
}

/// Result of a mapped-system simulation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Cycles until completion (or cutoff).
    pub cycles: u64,
    /// Completed firings per process.
    pub fired: Vec<u64>,
    /// True when every process finished its firings.
    pub completed: bool,
    /// True on dataflow deadlock.
    pub deadlocked: bool,
    /// Tokens moved per FPGA pair (indexed `a * k + b`, symmetric).
    pub link_tokens: Vec<u64>,
    /// Highest per-link utilisation: tokens / (bmax · cycles).
    pub max_link_utilization: f64,
    /// Total firings per cycle.
    pub throughput: f64,
}

#[inline]
fn quota(volume: u64, firings: u64, idx: u64) -> u64 {
    if firings == 0 {
        return 0;
    }
    let (v, f, i) = (volume as u128, firings as u128, idx as u128);
    (((i + 1) * v / f) - (i * v / f)) as u64
}

/// Simulate `net` mapped onto `platform` by `mapping`.
pub fn simulate_mapped(
    net: &ProcessNetwork,
    mapping: &Mapping,
    platform: &Platform,
    opts: &SystemOptions,
) -> SystemReport {
    net.validate().expect("network must validate");
    assert_eq!(mapping.assign.len(), net.num_processes());
    assert_eq!(mapping.k, platform.k());
    let np = net.num_processes();
    let nc = net.num_channels();
    let k = platform.k();

    let inputs: Vec<Vec<usize>> = net
        .process_ids()
        .map(|p| net.inputs_of(p).iter().map(|c| c.index()).collect())
        .collect();
    let outputs: Vec<Vec<usize>> = net
        .process_ids()
        .map(|p| net.outputs_of(p).iter().map(|c| c.index()).collect())
        .collect();
    let chan = |c: usize| net.channel(ppn_model::ChannelId(c as u32));
    let cross: Vec<Option<(usize, usize)>> = (0..nc)
        .map(|c| {
            let ch = chan(c);
            let (a, b) = (
                mapping.fpga_of(ch.from.index()),
                mapping.fpga_of(ch.to.index()),
            );
            if a == b {
                None
            } else {
                Some((a.min(b), a.max(b)))
            }
        })
        .collect();
    let volume: Vec<u64> = (0..nc).map(|c| chan(c).volume).collect();
    let prod_f: Vec<u64> = (0..nc).map(|c| net.process(chan(c).from).firings).collect();
    let cons_f: Vec<u64> = (0..nc).map(|c| net.process(chan(c).to).firings).collect();

    let mut fifo: Vec<u64> = (0..nc).map(|c| chan(c).initial_tokens).collect();
    let mut transit: Vec<u64> = vec![0; nc];
    let mut reserved: Vec<u64> = vec![0; nc];
    let mut pending_out: Vec<Vec<u64>> = (0..np).map(|p| vec![0; outputs[p].len()]).collect();
    let mut fired = vec![0u64; np];
    let mut started = vec![0u64; np];
    let mut remaining: Vec<u64> = net.process_ids().map(|p| net.process(p).firings).collect();
    let mut busy_until: Vec<Option<u64>> = vec![None; np];
    let mut link_tokens = vec![0u64; k * k];
    let mut rr_offset = 0usize; // round-robin fairness over channels

    let mut deadlocked = false;
    let mut t: u64 = 0;
    while t < opts.max_cycles {
        // 1. firing completions
        for p in 0..np {
            if busy_until[p] == Some(t) {
                busy_until[p] = None;
                fired[p] += 1;
                for (oi, &c) in outputs[p].iter().enumerate() {
                    let q = pending_out[p][oi];
                    match cross[c] {
                        None => {
                            // space was reserved at firing start
                            reserved[c] -= q;
                            fifo[c] += q;
                        }
                        Some(_) => transit[c] += q,
                    }
                    pending_out[p][oi] = 0;
                }
            }
        }

        // 2. link transport: per-pair budget, round-robin over channels
        let mut budget = vec![platform.bmax; k * k];
        for step in 0..nc {
            let c = (step + rr_offset) % nc;
            let Some((a, b)) = cross[c] else { continue };
            if transit[c] == 0 {
                continue;
            }
            let cap = chan(c).capacity;
            let space = cap.saturating_sub(fifo[c] + reserved[c]);
            let pair = a * k + b;
            let move_n = transit[c].min(budget[pair]).min(space);
            if move_n > 0 {
                transit[c] -= move_n;
                fifo[c] += move_n;
                budget[pair] -= move_n;
                link_tokens[pair] += move_n;
                link_tokens[b * k + a] += move_n;
            }
        }
        rr_offset = rr_offset.wrapping_add(1);

        // 3. firing starts (fixpoint within the cycle)
        loop {
            let mut any = false;
            for p in 0..np {
                if busy_until[p].is_some() || remaining[p] == 0 {
                    continue;
                }
                let idx = started[p];
                let can_read = inputs[p]
                    .iter()
                    .all(|&c| fifo[c] >= quota(volume[c], cons_f[c], idx));
                // reserve space in the FIFO (cross-FPGA production is
                // reserved in the destination FIFO once it arrives; the
                // transit queue itself is unbounded, modelling the
                // producer-side DMA buffer)
                let can_write = outputs[p].iter().all(|&c| {
                    let q = quota(volume[c], prod_f[c], idx);
                    match cross[c] {
                        None => fifo[c] + reserved[c] + q <= chan(c).capacity,
                        Some(_) => true,
                    }
                });
                if can_read && can_write {
                    for &c in &inputs[p] {
                        fifo[c] -= quota(volume[c], cons_f[c], idx);
                    }
                    for (oi, &c) in outputs[p].iter().enumerate() {
                        let q = quota(volume[c], prod_f[c], idx);
                        if cross[c].is_none() {
                            reserved[c] += q;
                        }
                        pending_out[p][oi] = q;
                    }
                    started[p] += 1;
                    remaining[p] -= 1;
                    busy_until[p] = Some(t + net.process(ProcessId(p as u32)).latency);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }

        let all_done = remaining.iter().all(|&r| r == 0)
            && busy_until.iter().all(|b| b.is_none())
            && transit.iter().all(|&x| x == 0);
        if all_done {
            break;
        }
        let in_flight = busy_until.iter().any(|b| b.is_some());
        let transiting = transit.iter().any(|&x| x > 0);
        if !in_flight && !transiting {
            if remaining.iter().any(|&r| r > 0) {
                deadlocked = true;
            }
            break;
        }
        t += 1;
    }

    let total: u64 = fired.iter().sum();
    let completed = net
        .process_ids()
        .all(|p| fired[p.index()] == net.process(p).firings);
    let max_link_utilization = if t == 0 || platform.bmax == 0 {
        0.0
    } else {
        let max_tokens = (0..k)
            .flat_map(|a| ((a + 1)..k).map(move |b| (a, b)))
            .map(|(a, b)| link_tokens[a * k + b])
            .max()
            .unwrap_or(0);
        max_tokens as f64 / (platform.bmax as f64 * t as f64)
    };
    SystemReport {
        cycles: t,
        fired,
        completed,
        deadlocked,
        link_tokens,
        max_link_utilization,
        throughput: if t > 0 { total as f64 / t as f64 } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::Partition;

    /// Producer → consumer pipeline with one channel of volume V.
    fn pipe(firings: u64) -> ProcessNetwork {
        let mut n = ProcessNetwork::new();
        let a = n.add_simple_process("a", 100, 1, firings);
        let b = n.add_simple_process("b", 100, 1, firings);
        n.add_channel(a, b, firings, 8);
        n
    }

    fn map2(assign: Vec<u32>) -> Mapping {
        Mapping::from_partition(&Partition::from_assignment(assign, 2).unwrap())
    }

    #[test]
    fn colocated_pipeline_matches_base_simulator() {
        let net = pipe(50);
        let platform = Platform::homogeneous(2, 1000, 1);
        let m = map2(vec![0, 0]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.completed, "{r:?}");
        let base = ppn_model::simulate(&net, &ppn_model::SimOptions::default());
        // same pipeline behaviour: within a couple of cycles
        assert!(
            r.cycles.abs_diff(base.cycles) <= 3,
            "{} vs {}",
            r.cycles,
            base.cycles
        );
        assert_eq!(r.link_tokens.iter().sum::<u64>(), 0);
    }

    #[test]
    fn wide_link_adds_bounded_latency() {
        let net = pipe(50);
        let platform = Platform::homogeneous(2, 1000, 10);
        let m = map2(vec![0, 1]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.completed, "{r:?}");
        // 1 token/cycle demand ≤ 10/cycle link: only pipeline fill extra
        assert!(
            r.cycles <= 60,
            "bounded slowdown expected, got {}",
            r.cycles
        );
        assert_eq!(r.link_tokens[1], 50);
    }

    #[test]
    fn saturated_link_serialises_throughput() {
        // producer makes 4 tokens per firing (volume 200 over 50
        // firings) but the link moves only 1 per cycle
        let mut net = ProcessNetwork::new();
        let a = net.add_simple_process("a", 100, 1, 50);
        let b = net.add_simple_process("b", 100, 1, 200);
        net.add_channel(a, b, 200, 16);
        let platform = Platform::homogeneous(2, 1000, 1);
        let m = map2(vec![0, 1]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.completed, "{r:?}");
        // 200 tokens over a 1-token/cycle link: ≥ 200 cycles
        assert!(r.cycles >= 200, "link should bottleneck: {}", r.cycles);
        assert!(r.max_link_utilization > 0.9, "{}", r.max_link_utilization);
    }

    #[test]
    fn faster_link_means_fewer_cycles() {
        // both endpoints fire 50 times, 4 tokens per firing over the
        // link: at bmax 8 the link keeps up (≈ one firing per cycle); at
        // bmax 1 each consumer firing waits 4 cycles for its tokens
        let mk = |bmax: u64| {
            let mut net = ProcessNetwork::new();
            let a = net.add_simple_process("a", 100, 1, 50);
            let b = net.add_simple_process("b", 100, 1, 50);
            net.add_channel(a, b, 200, 32);
            let platform = Platform::homogeneous(2, 1000, bmax);
            let m = map2(vec![0, 1]);
            simulate_mapped(&net, &m, &platform, &SystemOptions::default()).cycles
        };
        let slow = mk(1);
        let fast = mk(8);
        assert!(
            fast * 2 < slow,
            "bmax 8 ({fast}) should clearly beat bmax 1 ({slow})"
        );
    }

    #[test]
    fn deadlock_detection_survives_mapping() {
        let mut net = ProcessNetwork::new();
        let a = net.add_simple_process("a", 10, 1, 5);
        let b = net.add_simple_process("b", 10, 1, 5);
        net.add_channel(a, b, 5, 2);
        net.add_channel(b, a, 5, 2);
        let platform = Platform::homogeneous(2, 1000, 4);
        let m = map2(vec![0, 1]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert!(r.deadlocked);
        assert!(!r.completed);
    }

    #[test]
    fn link_tokens_symmetric_and_conserved() {
        let net = pipe(30);
        let platform = Platform::homogeneous(2, 1000, 4);
        let m = map2(vec![0, 1]);
        let r = simulate_mapped(&net, &m, &platform, &SystemOptions::default());
        assert_eq!(r.link_tokens[1], r.link_tokens[2]);
        assert_eq!(r.link_tokens[1], 30);
    }
}

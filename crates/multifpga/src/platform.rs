//! Platform description: FPGAs, link bandwidth, topology.

use ppn_graph::Constraints;
use ppn_model::ResourceVector;
use serde::{Deserialize, Serialize};

/// One FPGA of the platform.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fpga {
    /// Board/device name.
    pub name: String,
    /// Available resources.
    pub capacity: ResourceVector,
}

/// Inter-FPGA connectivity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Every pair of FPGAs is directly linked (the paper's model).
    FullMesh,
    /// FPGAs in a ring; only adjacent pairs are linked.
    Ring,
    /// 2D mesh of the given width (height = n / width).
    Mesh2D {
        /// Mesh width in FPGAs.
        width: usize,
    },
}

/// A multi-FPGA platform: `k` FPGAs, a uniform per-pair link bandwidth
/// `bmax` (tokens per cycle, matching the paper's "only Bmax data can be
/// transferred each unit of time"), and a topology.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Platform {
    /// The FPGAs.
    pub fpgas: Vec<Fpga>,
    /// Per-link bandwidth cap (`Bmax`).
    pub bmax: u64,
    /// Connectivity.
    pub topology: Topology,
}

impl Platform {
    /// A homogeneous full-mesh platform of `k` FPGAs with `luts` LUTs
    /// each and per-link bandwidth `bmax`.
    pub fn homogeneous(k: usize, luts: u64, bmax: u64) -> Self {
        Platform {
            fpgas: (0..k)
                .map(|i| Fpga {
                    name: format!("fpga{i}"),
                    capacity: ResourceVector::luts(luts),
                })
                .collect(),
            bmax,
            topology: Topology::FullMesh,
        }
    }

    /// Number of FPGAs.
    pub fn k(&self) -> usize {
        self.fpgas.len()
    }

    /// Are FPGAs `a` and `b` directly linked?
    pub fn linked(&self, a: usize, b: usize) -> bool {
        if a == b || a >= self.k() || b >= self.k() {
            return false;
        }
        match self.topology {
            Topology::FullMesh => true,
            Topology::Ring => {
                let n = self.k();
                (a + 1) % n == b || (b + 1) % n == a
            }
            Topology::Mesh2D { width } => {
                let (ax, ay) = (a % width, a / width);
                let (bx, by) = (b % width, b / width);
                ax.abs_diff(bx) + ay.abs_diff(by) == 1
            }
        }
    }

    /// The paper's scalar constraint view of this platform: `Rmax` = the
    /// smallest per-FPGA LUT capacity, `Bmax` = the link bandwidth.
    pub fn to_constraints(&self) -> Constraints {
        let rmax = self
            .fpgas
            .iter()
            .map(|f| f.capacity.scalar())
            .min()
            .unwrap_or(0);
        Constraints::new(rmax, self.bmax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_platform_shape() {
        let p = Platform::homogeneous(4, 1000, 16);
        assert_eq!(p.k(), 4);
        assert_eq!(p.to_constraints(), Constraints::new(1000, 16));
        assert!(p.linked(0, 3));
        assert!(!p.linked(2, 2));
    }

    #[test]
    fn ring_links_only_neighbours() {
        let mut p = Platform::homogeneous(5, 100, 4);
        p.topology = Topology::Ring;
        assert!(p.linked(0, 1));
        assert!(p.linked(4, 0));
        assert!(!p.linked(0, 2));
    }

    #[test]
    fn mesh2d_links_manhattan_neighbours() {
        let mut p = Platform::homogeneous(6, 100, 4);
        p.topology = Topology::Mesh2D { width: 3 };
        // layout: 0 1 2 / 3 4 5
        assert!(p.linked(0, 1));
        assert!(p.linked(1, 4));
        assert!(!p.linked(0, 4));
        assert!(!p.linked(2, 3));
    }

    #[test]
    fn heterogeneous_constraints_take_minimum() {
        let p = Platform {
            fpgas: vec![
                Fpga {
                    name: "big".into(),
                    capacity: ResourceVector::luts(2000),
                },
                Fpga {
                    name: "small".into(),
                    capacity: ResourceVector::luts(500),
                },
            ],
            bmax: 8,
            topology: Topology::FullMesh,
        };
        assert_eq!(p.to_constraints(), Constraints::new(500, 8));
    }

    #[test]
    fn out_of_range_indices_not_linked() {
        let p = Platform::homogeneous(2, 10, 1);
        assert!(!p.linked(0, 5));
    }
}

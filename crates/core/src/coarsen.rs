//! GP coarsening: best-of-three matchings per level (paper §IV-A).
//!
//! "We use in this work all three heuristics algorithms (Random, HEM,
//! K-Means) to get the matching. These heuristics are employed at
//! different times, multiple times, in order to find the best matching
//! for the given graph. Each time we compare the results of the three
//! heuristics with each other and choose the best one."
//!
//! The comparison criterion is the *absorbed edge weight* — the total
//! bandwidth hidden inside coarse nodes. Maximising it minimises the
//! bandwidth any partition of the coarse graph can possibly expose,
//! which is the quantity the `Bmax` constraint cares about. Ties go to
//! the matching with more pairs (faster shrinkage), then to the earlier
//! heuristic in the configured list (determinism).

use crate::kmeans::kmeans_matching;
use crate::params::MatchingKind;
use gp_classic::matching::heavy_edge_matching;
use ppn_graph::contract::{contract, CoarseMap};
use ppn_graph::matching::{random_maximal_matching, Matching};
use ppn_graph::prng::derive_seed;
use ppn_graph::WeightedGraph;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Run one matching heuristic.
pub fn run_matching(kind: MatchingKind, g: &WeightedGraph, seed: u64) -> Matching {
    match kind {
        MatchingKind::Random => random_maximal_matching(g, seed),
        MatchingKind::HeavyEdge => heavy_edge_matching(g, seed),
        MatchingKind::KMeans => kmeans_matching(g, seed),
    }
}

/// Pick the best matching among `kinds` for `g` (see module docs for the
/// criterion). Returns the winning kind alongside the matching.
///
/// With the `parallel` feature the heuristics of the tournament run
/// concurrently; the winner is selected with a total order (absorbed
/// weight, pair count, earliest heuristic), so the result is identical
/// sequentially or in parallel.
pub fn best_matching(
    kinds: &[MatchingKind],
    g: &WeightedGraph,
    seed: u64,
) -> (MatchingKind, Matching) {
    assert!(!kinds.is_empty(), "need at least one matching heuristic");
    type Scored = (
        (u64, usize, std::cmp::Reverse<usize>),
        MatchingKind,
        Matching,
    );
    let score = |(i, kind): (usize, MatchingKind)| -> Scored {
        let m = run_matching(kind, g, derive_seed(seed, i as u64));
        let absorbed = m.absorbed_weight(g);
        let pairs = m.num_pairs();
        ((absorbed, pairs, std::cmp::Reverse(i)), kind, m)
    };
    let indexed: Vec<(usize, MatchingKind)> = kinds.iter().copied().enumerate().collect();
    let best = {
        #[cfg(feature = "parallel")]
        {
            indexed
                .into_par_iter()
                .map(score)
                .max_by_key(|(key, _, _)| *key)
        }
        #[cfg(not(feature = "parallel"))]
        {
            indexed
                .into_iter()
                .map(score)
                .max_by_key(|(key, _, _)| *key)
        }
    };
    let (_, kind, m) = best.expect("at least one heuristic");
    (kind, m)
}

/// One level of the GP hierarchy.
#[derive(Clone, Debug)]
pub struct GpLevel {
    /// The finer graph.
    pub fine: WeightedGraph,
    /// Fine→coarse map.
    pub map: CoarseMap,
    /// Which heuristic won at this level.
    pub matching_kind: MatchingKind,
}

/// GP coarsening hierarchy.
#[derive(Clone, Debug)]
pub struct GpHierarchy {
    /// Levels, finest first.
    pub levels: Vec<GpLevel>,
    coarsest: WeightedGraph,
}

impl GpHierarchy {
    /// The coarsest graph.
    pub fn coarsest(&self) -> &WeightedGraph {
        &self.coarsest
    }

    /// Number of graphs (levels + 1).
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Node counts per graph, finest first (the paper's Fig. 1 trace).
    pub fn size_trace(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.levels.iter().map(|l| l.fine.num_nodes()).collect();
        t.push(self.coarsest.num_nodes());
        t
    }
}

/// Per-level coarsening statistics reported to the observer of
/// [`gp_coarsen_observed`] — what the perf harness records per PR.
#[derive(Clone, Debug)]
pub struct LevelTiming {
    /// Level index (0 = finest).
    pub level: usize,
    /// Nodes of the finer graph.
    pub fine_nodes: usize,
    /// Edges of the finer graph.
    pub fine_edges: usize,
    /// Nodes after contraction.
    pub coarse_nodes: usize,
    /// Which heuristic won the tournament.
    pub matching_kind: MatchingKind,
    /// Seconds spent in the matching tournament.
    pub matching_s: f64,
    /// Seconds spent contracting.
    pub contract_s: f64,
}

/// Build a GP hierarchy down to `coarsen_to` nodes, choosing the best of
/// the configured matchings at every level.
pub fn gp_coarsen(
    g: &WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
) -> GpHierarchy {
    gp_coarsen_observed(g, kinds, coarsen_to, seed, &mut |_| {})
}

/// [`gp_coarsen`] with a per-level observer: identical hierarchy (the
/// observer sees the real loop, so timing instrumentation can never
/// drift from what the partitioner runs).
pub fn gp_coarsen_observed(
    g: &WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
    observe: &mut dyn FnMut(&LevelTiming),
) -> GpHierarchy {
    let mut levels = Vec::new();
    let mut current = g.clone();
    let mut round = 0u64;
    while current.num_nodes() > coarsen_to {
        let t0 = std::time::Instant::now();
        let (kind, m) = best_matching(kinds, &current, derive_seed(seed, 0x6C + round));
        let matching_s = t0.elapsed().as_secs_f64();
        let coarse_nodes = m.coarse_node_count();
        if coarse_nodes as f64 > current.num_nodes() as f64 * 0.95 {
            break; // stalled (e.g. star graphs)
        }
        let t1 = std::time::Instant::now();
        let (coarse, map) = contract(&current, &m);
        observe(&LevelTiming {
            level: round as usize,
            fine_nodes: current.num_nodes(),
            fine_edges: current.num_edges(),
            coarse_nodes: coarse.num_nodes(),
            matching_kind: kind,
            matching_s,
            contract_s: t1.elapsed().as_secs_f64(),
        });
        levels.push(GpLevel {
            fine: current,
            map,
            matching_kind: kind,
        });
        current = coarse;
        round += 1;
    }
    GpHierarchy {
        levels,
        coarsest: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, w: u64) -> WeightedGraph {
        let mut g = WeightedGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(w)).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n], 1 + (i as u64 % 5))
                .unwrap();
        }
        g
    }

    #[test]
    fn best_matching_picks_highest_absorption() {
        // heavy-edge absorbs the most on a weight-skewed ring
        let g = ring(32, 4);
        let (kind, m) = best_matching(&MatchingKind::ALL, &g, 7);
        assert!(m.validate(&g));
        // whatever wins must absorb at least as much as every individual run
        let absorbed = m.absorbed_weight(&g);
        for (i, &k) in MatchingKind::ALL.iter().enumerate() {
            let alt = run_matching(k, &g, derive_seed(7, i as u64));
            assert!(
                absorbed >= alt.absorbed_weight(&g),
                "{kind} absorbed {absorbed} < {k} {}",
                alt.absorbed_weight(&g)
            );
        }
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = ring(256, 2);
        let h = gp_coarsen(&g, &MatchingKind::ALL, 32, 5);
        assert!(h.coarsest().num_nodes() <= 32);
        assert_eq!(h.coarsest().total_node_weight(), g.total_node_weight());
        let trace = h.size_trace();
        assert_eq!(trace[0], 256);
        assert!(
            trace.windows(2).all(|w| w[1] < w[0]),
            "sizes must shrink: {trace:?}"
        );
    }

    #[test]
    fn single_heuristic_hierarchy_works() {
        let g = ring(64, 1);
        for kind in MatchingKind::ALL {
            let h = gp_coarsen(&g, &[kind], 16, 3);
            assert!(
                h.coarsest().num_nodes() <= 16 || h.depth() == 1,
                "{kind}: {:?}",
                h.size_trace()
            );
        }
    }

    #[test]
    fn level_records_winning_kind() {
        let g = ring(64, 3);
        let h = gp_coarsen(&g, &MatchingKind::ALL, 16, 11);
        for l in &h.levels {
            assert!(MatchingKind::ALL.contains(&l.matching_kind));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = ring(64, 2);
        let a = gp_coarsen(&g, &MatchingKind::ALL, 16, 9);
        let b = gp_coarsen(&g, &MatchingKind::ALL, 16, 9);
        assert_eq!(a.size_trace(), b.size_trace());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.matching_kind, y.matching_kind);
            assert_eq!(x.map.map, y.map.map);
        }
    }
}

//! GP coarsening: best-of-three matchings per level (paper §IV-A).
//!
//! "We use in this work all three heuristics algorithms (Random, HEM,
//! K-Means) to get the matching. These heuristics are employed at
//! different times, multiple times, in order to find the best matching
//! for the given graph. Each time we compare the results of the three
//! heuristics with each other and choose the best one."
//!
//! The comparison criterion is the *absorbed edge weight* — the total
//! bandwidth hidden inside coarse nodes. Maximising it minimises the
//! bandwidth any partition of the coarse graph can possibly expose,
//! which is the quantity the `Bmax` constraint cares about. Ties go to
//! the matching with more pairs (faster shrinkage), then to the earlier
//! heuristic in the configured list (determinism).
//!
//! ## Hot-path engineering
//!
//! The per-level tournament is the partitioner's dominant cost at scale,
//! so the loop is allocation-free in steady state:
//!
//! * a [`MatchScratch`] builds the shuffled+sorted edge order **once per
//!   level** and shares it between heavy-edge and k-means matching (each
//!   heuristic used to allocate and re-sort its own copy);
//! * matchings track their absorbed weight incrementally
//!   (`Matching::absorbed`, O(1)) instead of re-scanning matched pairs
//!   with `find_edge` probes;
//! * contraction reuses a `ContractScratch` (last-seen marker-array
//!   merge, O(V + E) per level);
//! * the finest graph enters the hierarchy as [`Cow::Borrowed`] — it is
//!   never cloned (use [`gp_coarsen_owned`] to move a graph in).
//!
//! Every shortcut keeps a slow twin ([`CoarsenBackend::Reference`],
//! `contract_reference`, `Matching::absorbed_weight`, the Lloyd-scan
//! k-means) producing the bit-identical hierarchy; the perf harness runs
//! both backends and asserts equality per seed.

use crate::kmeans::{
    kmeans_matching, kmeans_matching_prepared, kmeans_matching_prepared_reference,
};
use crate::params::MatchingKind;
use gp_classic::matching::{
    heavy_edge_matching, heavy_edge_matching_node_scan, heavy_edge_matching_prepared,
    shuffled_sorted_edges,
};
use ppn_graph::arena::{LevelArena, LevelView};
use ppn_graph::budget::{Budget, Reservation};
use ppn_graph::contract::{contract_reference, contract_with, CoarseMap, ContractScratch};
use ppn_graph::faultpoint;
use ppn_graph::matching::{random_maximal_matching, Matching};
use ppn_graph::prng::derive_seed;
use ppn_graph::trace;
use ppn_graph::{GraphView, WeightedGraph};
use std::borrow::Cow;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Seed stream of the per-level shared edge order (distinct from every
/// per-heuristic stream).
const EDGE_ORDER_STREAM: u64 = 0xED6E;

/// Reusable working memory retained *across* coarsening runs on one
/// thread. A batch driver partitions many instances back to back; the
/// tournament edge order and the contraction marker arrays are the two
/// allocations every run rebuilds from scratch, and both only ever
/// `clear()` + `resize()`, so parking them in a thread-local between
/// runs makes the per-item setup allocation-free in steady state.
#[derive(Default)]
struct ScratchPool {
    match_scratch: MatchScratch,
    contract_scratch: ContractScratch,
}

thread_local! {
    static SCRATCH_POOL: std::cell::RefCell<Option<ScratchPool>> =
        const { std::cell::RefCell::new(None) };
}

/// Take the thread's parked scratch (fresh on the first run, or when a
/// nested coarsen call already holds it).
fn pool_take() -> ScratchPool {
    match SCRATCH_POOL.with(|p| p.borrow_mut().take()) {
        Some(pool) => {
            trace::counter("batch", "scratch_reuse", 1);
            pool
        }
        None => ScratchPool::default(),
    }
}

/// Park the scratch for the thread's next run.
fn pool_put(pool: ScratchPool) {
    SCRATCH_POOL.with(|p| *p.borrow_mut() = Some(pool));
}

/// True when this thread has a parked scratch pool from an earlier run
/// — i.e. the next coarsen call will amortize its setup. Exposed for
/// the batch-session tests.
pub fn scratch_pool_warm() -> bool {
    SCRATCH_POOL.with(|p| p.borrow().is_some())
}

/// Which implementation of the coarsening hot paths to run. Both produce
/// the bit-identical hierarchy per seed — `Reference` keeps the original
/// O(n·k) Lloyd assignment, `find_edge`-probing contraction and
/// absorbed-weight rescans alive as the measured baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoarsenBackend {
    /// Original implementations (perf baseline, property-test oracle).
    Reference,
    /// Marker-array contraction, binary-search k-means, O(1) absorbed
    /// weight. The default everywhere.
    Optimized,
}

/// Reusable per-level working memory for the matching tournament: the
/// shuffled-then-sorted `(weight, edge id)` order shared by heavy-edge
/// and k-means matching. `prepare` rebuilds it in place, so one scratch
/// held across levels makes the tournament allocation-free in steady
/// state.
#[derive(Clone, Debug, Default)]
pub struct MatchScratch {
    edges: Vec<(u64, u32)>,
}

impl MatchScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the shared edge order for one level.
    pub fn prepare<G: GraphView>(&mut self, g: &G, seed: u64) {
        shuffled_sorted_edges(g, seed, &mut self.edges);
    }

    /// The prepared `(weight, edge id)` order, heaviest first.
    pub fn edges(&self) -> &[(u64, u32)] {
        &self.edges
    }
}

/// Run one matching heuristic standalone (the heuristic builds any edge
/// order it needs itself). The tournament goes through
/// [`best_matching_in`] instead, which shares one prepared order.
pub fn run_matching<G: GraphView>(kind: MatchingKind, g: &G, seed: u64) -> Matching {
    match kind {
        MatchingKind::Random => random_maximal_matching(g, seed),
        MatchingKind::HeavyEdge => heavy_edge_matching(g, seed),
        MatchingKind::KMeans => kmeans_matching(g, seed),
        MatchingKind::HeavyEdgeNodeScan => heavy_edge_matching_node_scan(g, seed),
    }
}

/// Run one heuristic over the level's shared edge order.
fn run_matching_prepared<G: GraphView>(
    kind: MatchingKind,
    g: &G,
    seed: u64,
    edges: &[(u64, u32)],
    backend: CoarsenBackend,
) -> Matching {
    match kind {
        MatchingKind::Random => random_maximal_matching(g, seed),
        MatchingKind::HeavyEdge => heavy_edge_matching_prepared(g, edges),
        MatchingKind::KMeans => match backend {
            CoarsenBackend::Optimized => kmeans_matching_prepared(g, seed, edges),
            CoarsenBackend::Reference => kmeans_matching_prepared_reference(g, seed, edges),
        },
        MatchingKind::HeavyEdgeNodeScan => heavy_edge_matching_node_scan(g, seed),
    }
}

/// Wall-clock seconds one tournament entrant took at one level — what
/// the perf harness records per heuristic (previously only the winner's
/// name and the tournament total were visible).
#[derive(Clone, Debug)]
pub struct HeuristicTiming {
    /// The heuristic.
    pub kind: MatchingKind,
    /// Seconds spent producing its matching (excluding the shared edge
    /// order, which is built once per level and reported separately).
    pub seconds: f64,
}

/// Pick the best matching among `kinds` for `g` (see module docs for the
/// criterion). Returns the winning kind alongside the matching.
///
/// With the `parallel` feature the heuristics of the tournament run
/// concurrently; the winner is selected with a total order (absorbed
/// weight, pair count, earliest heuristic), so the result is identical
/// sequentially or in parallel.
pub fn best_matching<G: GraphView>(
    kinds: &[MatchingKind],
    g: &G,
    seed: u64,
) -> (MatchingKind, Matching) {
    let (kind, m, _) = best_matching_in(
        kinds,
        g,
        seed,
        &mut MatchScratch::new(),
        CoarsenBackend::Optimized,
    );
    (kind, m)
}

/// [`best_matching`] with a caller-held [`MatchScratch`] and an explicit
/// backend; also returns the per-heuristic timings. The scratch's edge
/// order is (re)built here from the level seed and shared by every
/// entrant, so a level sorts the edge list exactly once.
pub fn best_matching_in<G: GraphView>(
    kinds: &[MatchingKind],
    g: &G,
    seed: u64,
    scratch: &mut MatchScratch,
    backend: CoarsenBackend,
) -> (MatchingKind, Matching, Vec<HeuristicTiming>) {
    assert!(!kinds.is_empty(), "need at least one matching heuristic");
    // only the edge-scan heuristics consume the shared order — skip the
    // O(E log E) build for pure Random/node-scan ablations
    let needs_order = kinds
        .iter()
        .any(|k| matches!(k, MatchingKind::HeavyEdge | MatchingKind::KMeans));
    if needs_order {
        scratch.prepare(g, derive_seed(seed, EDGE_ORDER_STREAM));
    } else {
        scratch.edges.clear();
    }
    let edges = scratch.edges();
    type Scored = (
        (u64, usize, std::cmp::Reverse<usize>),
        MatchingKind,
        Matching,
        f64,
    );
    let score = |(i, kind): (usize, MatchingKind)| -> Scored {
        // runs on a rayon worker when parallel: thread-id-tagged span
        let sp = trace::timed_span("gp", "matching_entrant", i as i64);
        let m = run_matching_prepared(kind, g, derive_seed(seed, i as u64), edges, backend);
        let seconds = sp.finish();
        let absorbed = match backend {
            CoarsenBackend::Optimized => m.absorbed(),
            CoarsenBackend::Reference => m.absorbed_weight(g),
        };
        let pairs = m.num_pairs();
        ((absorbed, pairs, std::cmp::Reverse(i)), kind, m, seconds)
    };
    let indexed: Vec<(usize, MatchingKind)> = kinds.iter().copied().enumerate().collect();
    let scored: Vec<Scored> = {
        #[cfg(feature = "parallel")]
        {
            indexed.into_par_iter().map(score).collect()
        }
        #[cfg(not(feature = "parallel"))]
        {
            indexed.into_iter().map(score).collect()
        }
    };
    let timings: Vec<HeuristicTiming> = scored
        .iter()
        .map(|(_, kind, _, seconds)| HeuristicTiming {
            kind: *kind,
            seconds: *seconds,
        })
        .collect();
    let (_, kind, m, _) = scored
        .into_iter()
        .max_by_key(|(key, _, _, _)| *key)
        .expect("at least one heuristic");
    (kind, m, timings)
}

/// One level of the GP hierarchy. The finer graph is a [`Cow`]: the
/// finest level borrows the caller's graph (no clone), deeper levels own
/// the coarse graphs contraction produced.
#[derive(Clone, Debug)]
pub struct GpLevel<'a> {
    /// The finer graph.
    pub fine: Cow<'a, WeightedGraph>,
    /// Fine→coarse map.
    pub map: CoarseMap,
    /// Which heuristic won at this level.
    pub matching_kind: MatchingKind,
}

/// GP coarsening hierarchy. Borrows the finest graph when built through
/// [`gp_coarsen`] (zero-copy); [`gp_coarsen_owned`] yields a `'static`
/// hierarchy that owns every level.
#[derive(Clone, Debug)]
pub struct GpHierarchy<'a> {
    /// Levels, finest first.
    pub levels: Vec<GpLevel<'a>>,
    coarsest: Cow<'a, WeightedGraph>,
}

impl GpHierarchy<'_> {
    /// The coarsest graph.
    pub fn coarsest(&self) -> &WeightedGraph {
        &self.coarsest
    }

    /// Number of graphs (levels + 1).
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Node counts per graph, finest first (the paper's Fig. 1 trace).
    pub fn size_trace(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.levels.iter().map(|l| l.fine.num_nodes()).collect();
        t.push(self.coarsest.num_nodes());
        t
    }
}

/// Per-level coarsening statistics reported to the observer of
/// [`gp_coarsen_observed`] — what the perf harness records per PR.
/// The timing fields are populated from the same `timed_span` sites
/// that emit `gp:matching` / `gp:contract` trace spans, so this
/// callback is effectively a per-level consumer of those spans.
#[derive(Clone, Debug)]
pub struct LevelTiming {
    /// Level index (0 = finest).
    pub level: usize,
    /// Nodes of the finer graph.
    pub fine_nodes: usize,
    /// Edges of the finer graph.
    pub fine_edges: usize,
    /// Nodes after contraction.
    pub coarse_nodes: usize,
    /// Which heuristic won the tournament.
    pub matching_kind: MatchingKind,
    /// Seconds spent in the matching tournament.
    pub matching_s: f64,
    /// Seconds spent contracting.
    pub contract_s: f64,
    /// Seconds per tournament entrant, in `kinds` order.
    pub heuristics: Vec<HeuristicTiming>,
}

/// Build a GP hierarchy down to `coarsen_to` nodes, choosing the best of
/// the configured matchings at every level. The finest graph is borrowed
/// into the hierarchy, never cloned.
pub fn gp_coarsen<'a>(
    g: &'a WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
) -> GpHierarchy<'a> {
    gp_coarsen_impl(
        Cow::Borrowed(g),
        kinds,
        coarsen_to,
        seed,
        &mut |_| {},
        CoarsenBackend::Optimized,
    )
}

/// Owning entry point: move `g` into the hierarchy (first level owns it),
/// giving a `'static` hierarchy — for callers that are done with the
/// fine graph and would otherwise pay a full clone.
pub fn gp_coarsen_owned(
    g: WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
) -> GpHierarchy<'static> {
    gp_coarsen_impl(
        Cow::Owned(g),
        kinds,
        coarsen_to,
        seed,
        &mut |_| {},
        CoarsenBackend::Optimized,
    )
}

/// [`gp_coarsen`] with a per-level observer: identical hierarchy (the
/// observer sees the real loop, so timing instrumentation can never
/// drift from what the partitioner runs).
pub fn gp_coarsen_observed<'a>(
    g: &'a WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
    observe: &mut dyn FnMut(&LevelTiming),
) -> GpHierarchy<'a> {
    gp_coarsen_impl(
        Cow::Borrowed(g),
        kinds,
        coarsen_to,
        seed,
        observe,
        CoarsenBackend::Optimized,
    )
}

/// [`gp_coarsen`] on the reference backend: original Lloyd-scan k-means,
/// `find_edge`-probing contraction and absorbed-weight rescans. Produces
/// the bit-identical hierarchy (property-tested; the perf harness
/// asserts it per seed and prices the difference).
pub fn gp_coarsen_reference<'a>(
    g: &'a WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
) -> GpHierarchy<'a> {
    gp_coarsen_impl(
        Cow::Borrowed(g),
        kinds,
        coarsen_to,
        seed,
        &mut |_| {},
        CoarsenBackend::Reference,
    )
}

fn gp_coarsen_impl<'a>(
    g: Cow<'a, WeightedGraph>,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
    observe: &mut dyn FnMut(&LevelTiming),
    backend: CoarsenBackend,
) -> GpHierarchy<'a> {
    let mut levels: Vec<GpLevel<'a>> = Vec::new();
    let mut current: Cow<'a, WeightedGraph> = g;
    let mut pool = pool_take();
    let ScratchPool {
        match_scratch,
        contract_scratch,
    } = &mut pool;
    let mut round = 0u64;
    while current.num_nodes() > coarsen_to {
        let t0 = std::time::Instant::now();
        let (kind, m, heuristics) = best_matching_in(
            kinds,
            current.as_ref(),
            derive_seed(seed, 0x6C + round),
            match_scratch,
            backend,
        );
        let matching_s = t0.elapsed().as_secs_f64();
        let coarse_nodes = m.coarse_node_count();
        if coarse_nodes as f64 > current.num_nodes() as f64 * 0.95 {
            break; // stalled (e.g. star graphs)
        }
        let t1 = std::time::Instant::now();
        let (coarse, map) = match backend {
            CoarsenBackend::Optimized => contract_with(&current, &m, contract_scratch),
            CoarsenBackend::Reference => contract_reference(&current, &m),
        };
        observe(&LevelTiming {
            level: round as usize,
            fine_nodes: current.num_nodes(),
            fine_edges: current.num_edges(),
            coarse_nodes: coarse.num_nodes(),
            matching_kind: kind,
            matching_s,
            contract_s: t1.elapsed().as_secs_f64(),
            heuristics,
        });
        levels.push(GpLevel {
            fine: current,
            map,
            matching_kind: kind,
        });
        current = Cow::Owned(coarse);
        round += 1;
    }
    pool_put(pool);
    GpHierarchy {
        levels,
        coarsest: current,
    }
}

/// GP hierarchy over the flat CSR level arena — the scaling twin of
/// [`GpHierarchy`]. Where the Cow hierarchy rebuilds a [`WeightedGraph`]
/// per level (per-node adjacency `Vec`s, label options), the arena
/// appends compact u32/u64 arrays into shared allocations; levels hand
/// out zero-copy [`LevelView`]s / CSR views for matching and refinement.
///
/// Bit-identical to the Cow hierarchy by construction — every seeded
/// heuristic consumes the identical edge and adjacency order through
/// [`GraphView`] — and property-tested so (size trace, maps, winners,
/// coarse adjacency all equal; see `tests/flat_hierarchy.rs`).
#[derive(Clone, Debug)]
pub struct FlatHierarchy {
    /// The levels' storage.
    pub arena: LevelArena,
    /// Which heuristic won at each contracted level (finest first); one
    /// entry per contraction, i.e. `arena.num_levels() - 1`.
    pub winners: Vec<MatchingKind>,
}

impl FlatHierarchy {
    /// Number of graphs in the hierarchy (matches `GpHierarchy::depth`).
    pub fn depth(&self) -> usize {
        self.arena.num_levels()
    }

    /// Node counts per graph, finest first.
    pub fn size_trace(&self) -> Vec<usize> {
        self.arena.size_trace()
    }

    /// Borrow level `i` (0 = finest).
    pub fn level(&self, i: usize) -> LevelView<'_> {
        self.arena.level(i)
    }

    /// Fine→coarse map from level `i` to level `i + 1`.
    pub fn map(&self, i: usize) -> &[u32] {
        self.arena.map_slice(i)
    }

    /// Materialise the coarsest level as an owned graph (unlabeled) for
    /// the initial partitioner — at `coarsen_to` nodes this is tiny.
    pub fn coarsest_graph(&self) -> WeightedGraph {
        self.arena.top().to_graph()
    }
}

/// [`gp_coarsen`] on the flat level arena: identical loop, seeds, stall
/// rule and tournament as the Cow path (so identical matchings, maps and
/// winners per seed), but each contraction appends to the arena instead
/// of building a `WeightedGraph`. Optimized backend only — the Cow-based
/// [`gp_coarsen_reference`] remains the oracle for both.
pub fn gp_coarsen_flat(
    g: &WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
) -> FlatHierarchy {
    gp_coarsen_flat_observed(g, kinds, coarsen_to, seed, &mut |_| {})
}

/// [`gp_coarsen_flat`] with the per-level observer of
/// [`gp_coarsen_observed`].
pub fn gp_coarsen_flat_observed(
    g: &WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
    observe: &mut dyn FnMut(&LevelTiming),
) -> FlatHierarchy {
    let mut res = Budget::unlimited().begin_reservation();
    gp_coarsen_flat_budgeted_observed(
        g,
        kinds,
        coarsen_to,
        seed,
        &Budget::unlimited(),
        &mut res,
        observe,
    )
    .0
}

/// [`gp_coarsen_flat`] under a [`Budget`]: the budget is consulted only
/// at level boundaries (a level's matching tournament and contraction
/// run uninterrupted), and a level is started only when the remaining
/// wall-clock can plausibly fit it ([`Budget::admits_work`] over the
/// level's edge count) **and** its arena growth fits under the memory
/// ledger ([`LevelArena::try_reserve_level`] against `res`; the caller
/// owns the reservation so the tracked bytes stay reserved for as long
/// as it keeps the hierarchy alive). Returns the hierarchy built so far
/// plus the truncation reason when the budget stopped coarsening early —
/// `None` means the hierarchy is exactly what the unbudgeted twin
/// produces.
pub fn gp_coarsen_flat_budgeted(
    g: &WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
    budget: &Budget,
    res: &mut Reservation,
) -> (FlatHierarchy, Option<String>) {
    gp_coarsen_flat_budgeted_observed(g, kinds, coarsen_to, seed, budget, res, &mut |_| {})
}

/// [`gp_coarsen_flat_budgeted`] with the per-level observer.
#[allow(clippy::too_many_arguments)]
pub fn gp_coarsen_flat_budgeted_observed(
    g: &WeightedGraph,
    kinds: &[MatchingKind],
    coarsen_to: usize,
    seed: u64,
    budget: &Budget,
    res: &mut Reservation,
    observe: &mut dyn FnMut(&LevelTiming),
) -> (FlatHierarchy, Option<String>) {
    let mut cut_short: Option<String> = None;
    // Reserve the finest level before materialising it; refusal cannot
    // skip the arena (the hierarchy needs level 0 to exist) but stops
    // coarsening before it doubles the footprint. The conservative
    // estimate contracts to the measured size right after.
    let est0 = LevelArena::level_bytes_estimate(g.num_nodes(), g.num_edges());
    let fault0 = faultpoint::alloc_fault("gp", "coarsen");
    if fault0 || !res.try_grow(est0) {
        cut_short = Some(format!(
            "memory budget cannot fit the finest level ({est0} bytes)"
        ));
    }
    let mut arena = LevelArena::from_graph(g);
    if cut_short.is_none() {
        res.shrink(est0.saturating_sub(arena.total_bytes() as u64));
    }
    let mut winners = Vec::new();
    let mut pool = pool_take();
    let match_scratch = &mut pool.match_scratch;
    let mut round = 0u64;
    while cut_short.is_none() && arena.top().num_nodes() > coarsen_to {
        let _lvl = trace::span("gp", "coarsen_level", round as i64);
        let top = arena.num_levels() - 1;
        let (fine_nodes, fine_edges) = (arena.level_nodes(top), arena.level_edges(top));
        trace::counter("gp", "budget_checkpoint", 1);
        if !budget.allows_coarsen_level(round as usize) {
            cut_short = Some(format!("coarsen level cap reached at level {round}"));
            break;
        }
        if budget.expired() {
            cut_short = Some(format!("deadline expired before coarsen level {round}"));
            break;
        }
        if !budget.admits_work(fine_edges as u64) {
            cut_short = Some(format!(
                "remaining budget cannot fit a matching level over {fine_edges} edges"
            ));
            break;
        }
        // memory pre-flight for the level this round would append
        let reserved = if faultpoint::alloc_fault("gp", "coarsen") {
            Err(arena.next_level_bytes_bound())
        } else {
            arena.try_reserve_level(res)
        };
        let reserved = match reserved {
            Ok(bytes) => bytes,
            Err(want) => {
                cut_short = Some(format!(
                    "memory budget cannot fit coarsen level {round} ({want} bytes)"
                ));
                break;
            }
        };
        let sp = trace::timed_span("gp", "matching", round as i64);
        let (kind, m, heuristics) = {
            let view = arena.top();
            best_matching_in(
                kinds,
                &view,
                derive_seed(seed, 0x6C + round),
                match_scratch,
                CoarsenBackend::Optimized,
            )
        };
        let matching_s = sp.finish();
        let coarse_nodes = m.coarse_node_count();
        if coarse_nodes as f64 > fine_nodes as f64 * 0.95 {
            trace::counter("gp", "matching_stall", 1);
            res.shrink(reserved); // no level appended after all
            break; // stalled (e.g. star graphs) — same rule as the Cow loop
        }
        let sp = trace::timed_span("gp", "contract", round as i64);
        let before = arena.total_bytes();
        let cn = arena.contract_top(&m);
        res.shrink(reserved.saturating_sub((arena.total_bytes() - before) as u64));
        let contract_s = sp.finish();
        observe(&LevelTiming {
            level: round as usize,
            fine_nodes,
            fine_edges,
            coarse_nodes: cn,
            matching_kind: kind,
            matching_s,
            contract_s,
            heuristics,
        });
        winners.push(kind);
        round += 1;
    }
    if let Some(reason) = &cut_short {
        trace::instant_label("gp", "coarsen_cut_short", round as i64, reason);
    }
    pool_put(pool);
    (FlatHierarchy { arena, winners }, cut_short)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize, w: u64) -> WeightedGraph {
        let mut g = WeightedGraph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(w)).collect();
        for i in 0..n {
            g.add_edge(ids[i], ids[(i + 1) % n], 1 + (i as u64 % 5))
                .unwrap();
        }
        g
    }

    #[test]
    fn best_matching_picks_highest_absorption() {
        // heavy-edge absorbs the most on a weight-skewed ring
        let g = ring(32, 4);
        let (kind, m, timings) = best_matching_in(
            &MatchingKind::ALL,
            &g,
            7,
            &mut MatchScratch::new(),
            CoarsenBackend::Optimized,
        );
        assert!(m.validate(&g));
        assert_eq!(timings.len(), MatchingKind::ALL.len());
        // whatever wins must absorb at least as much as every entrant,
        // re-run over the identical shared order
        let absorbed = m.absorbed_weight(&g);
        let mut scratch = MatchScratch::new();
        scratch.prepare(&g, derive_seed(7, EDGE_ORDER_STREAM));
        for (i, &k) in MatchingKind::ALL.iter().enumerate() {
            let alt = run_matching_prepared(
                k,
                &g,
                derive_seed(7, i as u64),
                scratch.edges(),
                CoarsenBackend::Optimized,
            );
            assert!(
                absorbed >= alt.absorbed_weight(&g),
                "{kind} absorbed {absorbed} < {k} {}",
                alt.absorbed_weight(&g)
            );
        }
    }

    #[test]
    fn tournament_absorbed_counter_is_exact() {
        let g = ring(48, 3);
        let mut scratch = MatchScratch::new();
        scratch.prepare(&g, derive_seed(11, EDGE_ORDER_STREAM));
        for kind in MatchingKind::WITH_NODE_SCAN {
            let m = run_matching_prepared(
                kind,
                &g,
                derive_seed(11, 2),
                scratch.edges(),
                CoarsenBackend::Optimized,
            );
            assert_eq!(m.absorbed(), m.absorbed_weight(&g), "{kind}");
        }
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = ring(256, 2);
        let h = gp_coarsen(&g, &MatchingKind::ALL, 32, 5);
        assert!(h.coarsest().num_nodes() <= 32);
        assert_eq!(h.coarsest().total_node_weight(), g.total_node_weight());
        let trace = h.size_trace();
        assert_eq!(trace[0], 256);
        assert!(
            trace.windows(2).all(|w| w[1] < w[0]),
            "sizes must shrink: {trace:?}"
        );
    }

    #[test]
    fn single_heuristic_hierarchy_works() {
        let g = ring(64, 1);
        for kind in MatchingKind::WITH_NODE_SCAN {
            let h = gp_coarsen(&g, &[kind], 16, 3);
            assert!(
                h.coarsest().num_nodes() <= 16 || h.depth() == 1,
                "{kind}: {:?}",
                h.size_trace()
            );
        }
    }

    #[test]
    fn level_records_winning_kind() {
        let g = ring(64, 3);
        let h = gp_coarsen(&g, &MatchingKind::ALL, 16, 11);
        for l in &h.levels {
            assert!(MatchingKind::ALL.contains(&l.matching_kind));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = ring(64, 2);
        let a = gp_coarsen(&g, &MatchingKind::ALL, 16, 9);
        let b = gp_coarsen(&g, &MatchingKind::ALL, 16, 9);
        assert_eq!(a.size_trace(), b.size_trace());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.matching_kind, y.matching_kind);
            assert_eq!(x.map.map, y.map.map);
        }
    }

    #[test]
    fn reference_backend_builds_identical_hierarchy() {
        let g = ring(128, 3);
        let fast = gp_coarsen(&g, &MatchingKind::ALL, 16, 21);
        let slow = gp_coarsen_reference(&g, &MatchingKind::ALL, 16, 21);
        assert_eq!(fast.size_trace(), slow.size_trace());
        assert_eq!(fast.levels.len(), slow.levels.len());
        for (a, b) in fast.levels.iter().zip(&slow.levels) {
            assert_eq!(a.matching_kind, b.matching_kind);
            assert_eq!(a.map, b.map);
        }
    }

    #[test]
    fn borrowed_first_level_is_not_a_clone() {
        let g = ring(64, 2);
        let h = gp_coarsen(&g, &MatchingKind::ALL, 16, 9);
        assert!(
            matches!(h.levels[0].fine, Cow::Borrowed(_)),
            "finest level must borrow the caller's graph"
        );
        for l in &h.levels[1..] {
            assert!(matches!(l.fine, Cow::Owned(_)));
        }
    }

    #[test]
    fn owned_entry_point_matches_borrowed() {
        let g = ring(64, 2);
        let borrowed = gp_coarsen(&g, &MatchingKind::ALL, 16, 9);
        let owned = gp_coarsen_owned(g.clone(), &MatchingKind::ALL, 16, 9);
        assert_eq!(borrowed.size_trace(), owned.size_trace());
        assert!(matches!(owned.levels[0].fine, Cow::Owned(_)));
        for (a, b) in borrowed.levels.iter().zip(&owned.levels) {
            assert_eq!(a.map, b.map);
            assert_eq!(a.matching_kind, b.matching_kind);
        }
    }

    /// Compare the flat-arena hierarchy against the Cow hierarchy level
    /// by level: size trace, winners, maps, and full coarse structure.
    fn assert_flat_matches_cow(g: &WeightedGraph, coarsen_to: usize, seed: u64) {
        let cow = gp_coarsen(g, &MatchingKind::ALL, coarsen_to, seed);
        let flat = gp_coarsen_flat(g, &MatchingKind::ALL, coarsen_to, seed);
        assert_eq!(flat.size_trace(), cow.size_trace());
        assert_eq!(flat.winners.len(), cow.levels.len());
        for (i, l) in cow.levels.iter().enumerate() {
            assert_eq!(flat.winners[i], l.matching_kind, "winner at level {i}");
            assert_eq!(flat.map(i), &l.map.map[..], "map at level {i}");
        }
        // coarsest structure: same nodes, weights, edges, adjacency
        let coarsest = flat.coarsest_graph();
        let cow_coarsest = cow.coarsest();
        assert_eq!(coarsest.num_nodes(), cow_coarsest.num_nodes());
        assert_eq!(coarsest.node_weights(), cow_coarsest.node_weights());
        for v in cow_coarsest.node_ids() {
            assert_eq!(coarsest.neighbors(v), cow_coarsest.neighbors(v));
        }
        let ea: Vec<_> = coarsest.edges().collect();
        let eb: Vec<_> = cow_coarsest.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn flat_hierarchy_is_bit_identical_to_cow() {
        for seed in [5u64, 9, 21] {
            assert_flat_matches_cow(&ring(256, 2), 32, seed);
        }
    }

    #[test]
    fn flat_hierarchy_handles_tiny_and_stalled_graphs() {
        // already at target: no contraction
        let g = ring(8, 1);
        let flat = gp_coarsen_flat(&g, &MatchingKind::ALL, 16, 3);
        assert_eq!(flat.depth(), 1);
        assert!(flat.winners.is_empty());
        assert_flat_matches_cow(&g, 16, 3);
        // star graph stalls the matching quickly
        let mut star = WeightedGraph::new();
        let hub = star.add_node(1);
        let spokes: Vec<_> = (0..24).map(|_| star.add_node(1)).collect();
        for s in spokes {
            star.add_edge(hub, s, 1).unwrap();
        }
        assert_flat_matches_cow(&star, 4, 7);
    }

    #[test]
    fn observer_reports_per_heuristic_timings() {
        let g = ring(256, 2);
        let mut rows = Vec::new();
        let _ = gp_coarsen_observed(&g, &MatchingKind::ALL, 32, 5, &mut |t| {
            rows.push((t.level, t.heuristics.len()));
        });
        assert!(!rows.is_empty());
        for (level, n) in rows {
            assert_eq!(n, MatchingKind::ALL.len(), "level {level}");
        }
    }
}

//! # gp-core
//!
//! The paper's contribution: **GP**, a constrained multilevel k-way
//! partitioner for mapping process networks onto multi-FPGA systems
//! (Cattaneo et al., IPDPSW 2015).
//!
//! Given a weighted graph — node weights are FPGA resources, edge
//! weights are FIFO bandwidth — GP finds a k-way partition such that
//!
//! * the resources of every part stay below `Rmax` (one FPGA's capacity),
//! * the traffic between *each pair* of parts stays below `Bmax` (one
//!   inter-FPGA link's capacity),
//!
//! while heuristically minimising the total edge cut. METIS minimises
//! only the cut and routinely violates both limits (see `metis-lite` and
//! the bench harness reproducing the paper's Tables I–III).
//!
//! ## Quick start
//!
//! ```
//! use gp_core::{GpParams, GpPartitioner};
//! use ppn_graph::{Constraints, WeightedGraph};
//!
//! let mut g = WeightedGraph::new();
//! let a = g.add_node(40);
//! let b = g.add_node(40);
//! let c = g.add_node(40);
//! let d = g.add_node(40);
//! g.add_edge(a, b, 10).unwrap();
//! g.add_edge(b, c, 3).unwrap();
//! g.add_edge(c, d, 10).unwrap();
//!
//! let partitioner = GpPartitioner::new(GpParams::default());
//! let result = partitioner
//!     .partition(&g, 2, &Constraints::new(90, 5))
//!     .expect("these constraints are satisfiable");
//! assert!(result.feasible);
//! assert!(result.quality.max_local_bandwidth <= 5);
//! assert!(result.quality.max_resource <= 90);
//! ```

pub mod coarsen;
pub mod cycle;
pub mod initial;
pub mod kmeans;
pub mod params;
pub mod refine;
pub mod refine_reference;
pub mod report;

pub use coarsen::{
    best_matching, best_matching_in, gp_coarsen, gp_coarsen_flat, gp_coarsen_flat_budgeted,
    gp_coarsen_flat_budgeted_observed, gp_coarsen_flat_observed, gp_coarsen_observed,
    gp_coarsen_owned, gp_coarsen_reference, scratch_pool_warm, CoarsenBackend, FlatHierarchy,
    GpHierarchy, GpLevel, HeuristicTiming, LevelTiming, MatchScratch,
};
pub use cycle::{gp_partition, gp_partition_budgeted};
pub use initial::{greedy_initial_partition, InitialOptions};
pub use kmeans::kmeans_matching;
pub use params::{GpParams, MatchingKind};
pub use refine::{
    constrained_refine, constrained_refine_csr, constrained_refine_migration,
    constrained_refine_migration_csr, constrained_refine_parallel, constrained_refine_parallel_csr,
    migration_mass, ConstrainedState, MigrationOptions, MoveDelta, RefineOptions,
};
pub use refine_reference::constrained_refine_reference;
pub use report::{CycleTrace, GpInfeasible, GpResult, PhaseSeconds};

use ppn_graph::{Constraints, WeightedGraph};

/// Convenience façade over [`gp_partition`] holding a parameter set.
#[derive(Clone, Debug, Default)]
pub struct GpPartitioner {
    /// Algorithm parameters.
    pub params: GpParams,
}

impl GpPartitioner {
    /// Partitioner with the given parameters.
    pub fn new(params: GpParams) -> Self {
        GpPartitioner { params }
    }

    /// Partition `g` into `k` parts under `constraints`.
    pub fn partition(
        &self,
        g: &WeightedGraph,
        k: usize,
        constraints: &Constraints,
    ) -> Result<GpResult, Box<GpInfeasible>> {
        gp_partition(g, k, constraints, &self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_matches_free_function() {
        let mut g = WeightedGraph::new();
        let a = g.add_node(10);
        let b = g.add_node(10);
        let c = g.add_node(10);
        g.add_edge(a, b, 4).unwrap();
        g.add_edge(b, c, 4).unwrap();
        let cons = Constraints::new(20, 10);
        let p1 = GpPartitioner::default().partition(&g, 2, &cons).unwrap();
        let p2 = gp_partition(&g, 2, &cons, &GpParams::default()).unwrap();
        assert_eq!(p1.partition, p2.partition);
    }
}

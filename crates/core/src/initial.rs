//! Greedy resource-bounded initial partitioning (paper §IV-B).
//!
//! On the coarsest graph:
//!
//! 1. start from the heaviest node, open part 0, and absorb neighbours
//!    (heaviest-connection first) while `Rmax` holds; repeat for the
//!    remaining parts;
//! 2. leftover nodes go best-fit into the part with the most free space;
//! 3. if nothing fits, overflow into the part with the most free space
//!    anyway ("even though this implies violating the Rmax constraint");
//! 4. an FM-style constrained repair pass drives pairwise bandwidth under
//!    `Bmax` as far as possible.
//!
//! Because the outcome is sensitive to the first seed node, the whole
//! procedure restarts from random seed nodes a parametrised number of
//! times (default 10, paper §IV-B) and the goodness function picks the
//! winner. Restarts are embarrassingly parallel and run under rayon when
//! the `parallel` feature is enabled; selection reduces with a total
//! order, so the result is identical sequentially or in parallel.

use crate::refine::{constrained_refine, RefineOptions};
use ppn_graph::metrics::PartitionQuality;
use ppn_graph::prng::{derive_seed, XorShift128Plus};
use ppn_graph::trace;
use ppn_graph::{Constraints, NodeId, Partition, WeightedGraph};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Options for [`greedy_initial_partition`].
#[derive(Clone, Debug)]
pub struct InitialOptions {
    /// Number of restarts (first restart always seeds from the heaviest
    /// node; the rest use random seed nodes).
    pub restarts: usize,
    /// FM repair passes after the greedy allocation.
    pub repair_passes: usize,
    /// Seed.
    pub seed: u64,
    /// Evaluate restarts in parallel.
    pub parallel: bool,
}

impl Default for InitialOptions {
    fn default() -> Self {
        InitialOptions {
            restarts: 10,
            repair_passes: 8,
            seed: 77,
            parallel: true,
        }
    }
}

/// One greedy allocation from a given seed node.
fn grow_from(g: &WeightedGraph, k: usize, c: &Constraints, first: NodeId, seed: u64) -> Partition {
    let n = g.num_nodes();
    let mut p = Partition::unassigned(n, k);
    let mut part_weight = vec![0u64; k];
    let mut rng = XorShift128Plus::new(seed);

    // heaviest-first order for choosing the next part's seed
    let mut by_weight: Vec<NodeId> = g.node_ids().collect();
    by_weight.sort_by_key(|&v| std::cmp::Reverse((g.node_weight(v), std::cmp::Reverse(v.0))));

    let mut next_seed = Some(first);
    for part in 0..k as u32 {
        let Some(seed_node) = next_seed
            .take()
            .or_else(|| by_weight.iter().copied().find(|&v| !p.is_assigned(v)))
        else {
            break; // everything assigned already
        };
        if p.is_assigned(seed_node) {
            // the chosen first node may already be taken in later parts
            if let Some(v) = by_weight.iter().copied().find(|&v| !p.is_assigned(v)) {
                p.assign(v, part);
                part_weight[part as usize] += g.node_weight(v);
            } else {
                break;
            }
        } else {
            p.assign(seed_node, part);
            part_weight[part as usize] += g.node_weight(seed_node);
        }

        // absorb neighbours by heaviest connection while Rmax holds
        loop {
            let mut best: Option<(u64, NodeId)> = None;
            for v in g.node_ids().filter(|&v| p.part_of(v) == part) {
                for &(u, e) in g.neighbors(v) {
                    if p.is_assigned(u) {
                        continue;
                    }
                    let w = g.edge_weight(e);
                    match best {
                        Some((bw, bu))
                            if (bw, std::cmp::Reverse(bu.0)) >= (w, std::cmp::Reverse(u.0)) => {}
                        _ => best = Some((w, u)),
                    }
                }
            }
            let Some((_, u)) = best else { break };
            if part_weight[part as usize] + g.node_weight(u) > c.rmax {
                break; // paper: stop growing this part at Rmax
            }
            p.assign(u, part);
            part_weight[part as usize] += g.node_weight(u);
        }
        let _ = &mut rng; // rng reserved for tie-breaking variants
    }

    // best-fit sweep for leftovers (largest free space first)
    let leftovers = p.unassigned_nodes();
    for v in leftovers {
        let wv = g.node_weight(v);
        let fitting = (0..k)
            .filter(|&q| part_weight[q] + wv <= c.rmax)
            .max_by_key(|&q| (c.rmax - part_weight[q], std::cmp::Reverse(q)));
        let target = fitting.unwrap_or_else(|| {
            // overflow: most free space even though Rmax breaks
            (0..k)
                .max_by_key(|&q| (c.rmax.saturating_sub(part_weight[q]), std::cmp::Reverse(q)))
                .unwrap()
        });
        p.assign(v, target as u32);
        part_weight[target] += wv;
    }
    debug_assert!(p.is_complete());
    p
}

/// Goodness-ordered key for restart selection (lower is better):
/// `(violation count, violation magnitude, total cut, restart index)`.
type Goodness = (u64, u64, u64, usize);

fn run_restart(
    g: &WeightedGraph,
    k: usize,
    c: &Constraints,
    opts: &InitialOptions,
    r: usize,
) -> (Goodness, Partition) {
    // runs on a rayon worker when parallel: thread-id-tagged span
    let _sp = trace::span("gp", "restart", r as i64);
    let seed = derive_seed(opts.seed, r as u64);
    let first = if r == 0 {
        g.node_ids()
            .max_by_key(|&v| (g.node_weight(v), std::cmp::Reverse(v.0)))
            .expect("non-empty graph")
    } else {
        let mut rng = XorShift128Plus::new(seed);
        NodeId::from_index(rng.next_below(g.num_nodes()))
    };
    let mut p = grow_from(g, k, c, first, seed);
    constrained_refine(
        g,
        &mut p,
        c,
        &RefineOptions {
            max_passes: opts.repair_passes,
            seed,
            protect_nonempty: true,
        },
    );
    let q = PartitionQuality::measure(g, &p);
    let (count, magnitude, cut) = q.goodness_key(c.rmax, c.bmax);
    ((count, magnitude, cut, r), p)
}

/// Greedy initial partitioning with restarts; returns the best partition
/// under the goodness order.
pub fn greedy_initial_partition(
    g: &WeightedGraph,
    k: usize,
    c: &Constraints,
    opts: &InitialOptions,
) -> Partition {
    assert!(k >= 1);
    assert!(g.num_nodes() > 0, "cannot partition an empty graph");
    let restarts = opts.restarts.max(1);

    let best = {
        #[cfg(feature = "parallel")]
        {
            if opts.parallel {
                (0..restarts)
                    .into_par_iter()
                    .map(|r| run_restart(g, k, c, opts, r))
                    .min_by_key(|(key, _)| *key)
            } else {
                (0..restarts)
                    .map(|r| run_restart(g, k, c, opts, r))
                    .min_by_key(|(key, _)| *key)
            }
        }
        #[cfg(not(feature = "parallel"))]
        {
            (0..restarts)
                .map(|r| run_restart(g, k, c, opts, r))
                .min_by_key(|(key, _)| *key)
        }
    };
    best.expect("at least one restart").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::metrics::edge_cut;

    fn chain_clusters() -> WeightedGraph {
        // 12 nodes in 4 natural triads, like the paper's experiments
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..12)
            .map(|i| g.add_node(20 + (i as u64 * 7) % 30))
            .collect();
        for c in 0..4 {
            let b = c * 3;
            g.add_edge(n[b], n[b + 1], 12).unwrap();
            g.add_edge(n[b + 1], n[b + 2], 12).unwrap();
            g.add_edge(n[b], n[b + 2], 12).unwrap();
        }
        for c in 0..3 {
            g.add_edge(n[c * 3 + 2], n[(c + 1) * 3], 3).unwrap();
        }
        g
    }

    #[test]
    fn produces_complete_partition() {
        let g = chain_clusters();
        let c = Constraints::new(120, 30);
        let p = greedy_initial_partition(&g, 4, &c, &InitialOptions::default());
        assert!(p.is_complete());
        assert_eq!(p.k(), 4);
    }

    #[test]
    fn respects_rmax_when_feasible() {
        let g = chain_clusters();
        // generous rmax: every part can hold a triad
        let c = Constraints::new(150, 100);
        let p = greedy_initial_partition(&g, 4, &c, &InitialOptions::default());
        let w = p.part_weights(&g);
        assert!(
            w.iter().all(|&x| x <= 150),
            "rmax should hold with generous caps: {w:?}"
        );
    }

    #[test]
    fn overflows_gracefully_when_infeasible() {
        let g = chain_clusters();
        // rmax below the heaviest node: infeasible, but must not panic
        let c = Constraints::new(10, 100);
        let p = greedy_initial_partition(&g, 4, &c, &InitialOptions::default());
        assert!(
            p.is_complete(),
            "overflow path must still assign everything"
        );
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let g = chain_clusters();
        let c = Constraints::new(130, 40);
        let seq = greedy_initial_partition(
            &g,
            4,
            &c,
            &InitialOptions {
                parallel: false,
                ..Default::default()
            },
        );
        let par = greedy_initial_partition(
            &g,
            4,
            &c,
            &InitialOptions {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(seq, par, "restart selection must be schedule-independent");
    }

    #[test]
    fn more_restarts_never_hurt_goodness() {
        let g = chain_clusters();
        let c = Constraints::new(130, 40);
        let q = |restarts| {
            let p = greedy_initial_partition(
                &g,
                4,
                &c,
                &InitialOptions {
                    restarts,
                    ..Default::default()
                },
            );
            PartitionQuality::measure(&g, &p).goodness_key(c.rmax, c.bmax)
        };
        assert!(q(10) <= q(1), "restart 1..10 includes restart 0");
    }

    #[test]
    fn single_part_takes_everything() {
        let g = chain_clusters();
        let c = Constraints::new(u64::MAX, u64::MAX);
        let p = greedy_initial_partition(&g, 1, &c, &InitialOptions::default());
        assert!(p.assignment().iter().all(|&a| a == 0));
        assert_eq!(edge_cut(&g, &p), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = chain_clusters();
        let c = Constraints::new(130, 40);
        let a = greedy_initial_partition(&g, 4, &c, &InitialOptions::default());
        let b = greedy_initial_partition(&g, 4, &c, &InitialOptions::default());
        assert_eq!(a, b);
    }
}

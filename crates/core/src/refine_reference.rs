//! The original full-sweep constrained refinement, preserved as the
//! perf baseline for [`crate::refine::constrained_refine`].
//!
//! This is the pre-optimisation implementation, kept verbatim in both
//! behaviour *and* asymptotics so the `perf` harness (ppn-bench) can
//! measure the speedup of the boundary-driven rewrite against it on
//! every PR:
//!
//! * every pass sweeps **all** nodes, not just the boundary;
//! * candidate targets are gathered into a freshly allocated `Vec` per
//!   node; move evaluation builds a linear-scanned sparse pair list;
//! * every applied move recomputes the total cut with an O(k²) matrix
//!   scan;
//! * the pairwise-exchange repair evaluates each candidate swap by
//!   cloning the whole state and partition and applying both moves.
//!
//! It satisfies the same contract as the optimised version (violations
//! never increase; the cut never increases while feasible; identical
//! fixed points) and the property suite runs the invariants against
//! both. Do not "fix" its performance — that would silently rebase the
//! benchmark.

use crate::refine::{ConstrainedState, MoveDelta, RefineOptions};
use ppn_graph::metrics::CutMatrix;
use ppn_graph::prng::{derive_seed, XorShift128Plus};
use ppn_graph::{Constraints, NodeId, Partition, WeightedGraph};

/// O(k²) total-cut scan — the recompute the optimised path no longer
/// performs per move.
fn total_cut_scan(cut: &CutMatrix) -> u64 {
    let k = cut.k();
    let mut s = 0;
    for a in 0..k {
        for b in (a + 1)..k {
            s += cut.get(a, b);
        }
    }
    s
}

/// Original sparse pair-list move evaluation (linear-scan dedup).
fn evaluate_move_pairlist(
    state: &ConstrainedState,
    g: &WeightedGraph,
    p: &Partition,
    c: &Constraints,
    v: NodeId,
    to: u32,
    scratch: &mut Vec<(usize, i64)>,
) -> MoveDelta {
    let from = p.part_of(v);
    debug_assert_ne!(from, Partition::UNASSIGNED);
    if from == to {
        return MoveDelta { dviol: 0, dcut: 0 };
    }
    let k = state.cut.k();
    let (f, t) = (from as usize, to as usize);

    // per-pair traffic deltas caused by the move
    scratch.clear();
    let push = |scratch: &mut Vec<(usize, i64)>, a: usize, b: usize, d: i64| {
        if a == b {
            return;
        }
        let key = if a < b { a * k + b } else { b * k + a };
        if let Some(e) = scratch.iter_mut().find(|(p, _)| *p == key) {
            e.1 += d;
        } else {
            scratch.push((key, d));
        }
    };
    let mut dcut = 0i64;
    for &(u, e) in g.neighbors(v) {
        let q = p.part_of(u);
        if q == Partition::UNASSIGNED {
            continue;
        }
        let w = g.edge_weight(e) as i64;
        let q = q as usize;
        if q != f {
            push(scratch, f, q, -w);
            dcut -= w;
        }
        if q != t {
            push(scratch, t, q, w);
            dcut += w;
        }
    }

    // bandwidth violation delta over affected pairs
    let bmax = c.bmax;
    let mut dviol = 0i64;
    for &(key, d) in scratch.iter() {
        let (a, b) = (key / k, key % k);
        let cur = state.cut.get(a, b);
        let after = (cur as i64 + d) as u64;
        dviol += after.saturating_sub(bmax) as i64 - cur.saturating_sub(bmax) as i64;
    }

    // resource violation delta on the two parts
    let wv = g.node_weight(v);
    let rmax = c.rmax;
    let er = |x: u64| x.saturating_sub(rmax) as i64;
    let (wf, wt) = (state.part_weights[f], state.part_weights[t]);
    dviol += er(wt + wv) - er(wt) - (er(wf) - er(wf - wv));

    MoveDelta { dviol, dcut }
}

/// Full-sweep constrained refinement: nodes are visited in random
/// order; each node moves to the neighbouring part with the best
/// strictly-improving `(Δviolation, Δcut)`. Returns the number of
/// moves applied. Same contract as
/// [`constrained_refine`](crate::refine::constrained_refine), original
/// (pre-boundary) cost model.
pub fn constrained_refine_reference(
    g: &WeightedGraph,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
) -> usize {
    assert!(p.is_complete(), "refinement needs a complete partition");
    let k = p.k();
    let mut state = ConstrainedState::new(g, p);
    let mut rng = XorShift128Plus::new(derive_seed(opts.seed, 0xC0F1));
    let mut scratch: Vec<(usize, i64)> = Vec::new();
    let mut total_moves = 0;

    for _ in 0..opts.max_passes {
        let mut order: Vec<NodeId> = g.node_ids().collect();
        rng.shuffle(&mut order);
        let mut moves = 0;
        for v in order {
            let from = p.part_of(v) as usize;
            if opts.protect_nonempty && state.part_sizes[from] == 1 {
                continue;
            }
            // candidate targets: parts in the neighbourhood, plus the
            // lightest part when the source part violates Rmax
            let mut candidates: Vec<u32> = Vec::new();
            for &(u, _) in g.neighbors(v) {
                let q = p.part_of(u);
                if q != from as u32 && !candidates.contains(&q) {
                    candidates.push(q);
                }
            }
            if state.part_weights[from] > c.rmax {
                if let Some(light) = (0..k as u32)
                    .filter(|&t| t as usize != from)
                    .min_by_key(|&t| state.part_weights[t as usize])
                {
                    if !candidates.contains(&light) {
                        candidates.push(light);
                    }
                }
            }
            let mut best: Option<(MoveDelta, u32)> = None;
            for &t in &candidates {
                let d = evaluate_move_pairlist(&state, g, p, c, v, t, &mut scratch);
                if !d.improves() {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bd, bt)) => (d.dviol, d.dcut, t) < (bd.dviol, bd.dcut, *bt),
                };
                if better {
                    best = Some((d, t));
                }
            }
            if let Some((_, t)) = best {
                state.apply_move(g, p, v, t);
                // the original recomputed the total from the matrix
                // after every applied move
                state.total_cut = total_cut_scan(&state.cut);
                moves += 1;
            }
        }
        total_moves += moves;
        if moves == 0 {
            let swaps = swap_pass_reference(g, p, c, &mut state);
            total_moves += swaps;
            if swaps == 0 {
                break;
            }
        }
    }
    total_moves
}

/// Original pairwise-exchange pass: the exact effect of a swap is
/// evaluated by applying both moves on a scratch **clone** of the state
/// and partition.
fn swap_pass_reference(
    g: &WeightedGraph,
    p: &mut Partition,
    c: &Constraints,
    state: &mut ConstrainedState,
) -> usize {
    let k = p.k();
    let mut swaps = 0;
    let mut progress = true;
    while progress && state.violation(c) > 0 {
        progress = false;
        let Some(over) = (0..k).find(|&a| state.part_weights[a] > c.rmax) else {
            break;
        };
        let viol_before = state.violation(c) as i64;
        let cut_before = state.total_cut as i64;
        let members = p.members();
        let mut best: Option<((i64, i64), NodeId, NodeId)> = None;
        for &u in &members[over] {
            let wu = g.node_weight(u);
            for b in (0..k).filter(|&b| b != over) {
                for &v in &members[b] {
                    let wv = g.node_weight(v);
                    if wv >= wu {
                        continue; // swap must lighten the violating part
                    }
                    // cheap resource prefilter before the exact check
                    let wa = state.part_weights[over];
                    let wb = state.part_weights[b];
                    let res_before =
                        (wa as i64 - c.rmax as i64).max(0) + (wb as i64 - c.rmax as i64).max(0);
                    let res_after = ((wa - wu + wv) as i64 - c.rmax as i64).max(0)
                        + ((wb - wv + wu) as i64 - c.rmax as i64).max(0);
                    if res_after >= res_before {
                        continue;
                    }
                    // exact evaluation on a scratch copy
                    let mut s2 = state.clone();
                    let mut p2 = p.clone();
                    s2.apply_move(g, &mut p2, u, b as u32);
                    s2.apply_move(g, &mut p2, v, over as u32);
                    let d = (
                        s2.violation(c) as i64 - viol_before,
                        s2.total_cut as i64 - cut_before,
                    );
                    if d.0 < 0 || (d.0 == 0 && d.1 < 0) {
                        match best {
                            Some((bd, _, _)) if bd <= d => {}
                            _ => best = Some((d, u, v)),
                        }
                    }
                }
            }
        }
        if let Some((_, u, v)) = best {
            let bu = p.part_of(v);
            state.apply_move(g, p, u, bu);
            state.apply_move(g, p, v, over as u32);
            swaps += 1;
            progress = true;
        }
    }
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::metrics::edge_cut;

    fn bw_tension() -> WeightedGraph {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(10)).collect();
        g.add_edge(n[0], n[1], 100).unwrap();
        g.add_edge(n[2], n[3], 100).unwrap();
        g.add_edge(n[1], n[2], 15).unwrap();
        g.add_edge(n[3], n[4], 15).unwrap();
        g.add_edge(n[4], n[5], 100).unwrap();
        g
    }

    #[test]
    fn reference_still_refines() {
        let g = bw_tension();
        let c = Constraints::new(30, 200);
        let mut p = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let before = edge_cut(&g, &p);
        constrained_refine_reference(&g, &mut p, &c, &RefineOptions::default());
        assert!(edge_cut(&g, &p) <= before);
        assert!(c.is_feasible(&g, &p));
    }

    #[test]
    fn reference_never_worsens_violation() {
        let g = bw_tension();
        let c = Constraints::new(30, 18);
        for seed in 0..8u64 {
            let assign: Vec<u32> = (0..6).map(|i| ((i + seed as usize) % 3) as u32).collect();
            let mut p = Partition::from_assignment(assign, 3).unwrap();
            let v_before = ConstrainedState::new(&g, &p).violation(&c);
            constrained_refine_reference(
                &g,
                &mut p,
                &c,
                &RefineOptions {
                    seed,
                    ..Default::default()
                },
            );
            let v_after = ConstrainedState::new(&g, &p).violation(&c);
            assert!(v_after <= v_before, "seed {seed}");
        }
    }

    #[test]
    fn reference_swap_pass_solves_tight_packing() {
        let mut g = WeightedGraph::new();
        let a = g.add_node(60);
        let b = g.add_node(45);
        let c0 = g.add_node(30);
        let d = g.add_node(40);
        let e = g.add_node(49);
        let f = g.add_node(35);
        g.add_edge(a, b, 9).unwrap();
        g.add_edge(b, c0, 9).unwrap();
        g.add_edge(d, e, 9).unwrap();
        g.add_edge(e, f, 9).unwrap();
        g.add_edge(c0, d, 3).unwrap();
        let cons = Constraints::new(133, 1000);
        let mut p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        let moves = constrained_refine_reference(&g, &mut p, &cons, &RefineOptions::default());
        assert!(moves > 0);
        assert!(cons.is_feasible(&g, &p));
    }
}

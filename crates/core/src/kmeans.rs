//! K-Means matching (paper §IV-A, third heuristic).
//!
//! The paper describes clustering nodes "on the basis of their weight"
//! and matching "a subset of near nodes ... accordingly" (after Khan's
//! multilevel-TSP scheme). Our concretisation, documented in DESIGN.md:
//!
//! 1. run 1-D Lloyd's k-means on the node *resource weights* with
//!    `max(2, n/8)` clusters — this groups processes of similar size;
//! 2. inside each cluster, match graph-adjacent nodes greedily by
//!    heaviest connecting edge.
//!
//! The effect is a contraction whose coarse nodes have homogeneous
//! weights — exactly what the resource-constrained initial partitioning
//! wants to see (uneven coarse nodes make `Rmax` bin-packing needlessly
//! hard). Pairing *within* a weight cluster is the property the paper's
//! text emphasises; the greedy heavy-edge tie-break keeps the cut low.
//!
//! ## The assignment step is the coarsening bottleneck
//!
//! With `k = n/8` clusters, the textbook Lloyd assignment scans every
//! centroid per node per iteration — O(n²·iters/8), ~4 billion
//! comparisons at 32k nodes, which made k-means matching dominate the
//! entire partitioner. [`assign_fast`] replaces the scan with a binary
//! search over the sorted centroids: in 1-D the nearest centroid is
//! always one of the two values bracketing the query, so each node costs
//! O(log k) and an iteration costs O((n + k)·log k). The scan survives
//! as [`assign_reference`], and a property test pins the two to the
//! *identical* assignment — including Rust's first-minimal-index
//! tie-break — on arbitrary inputs, so the fast path cannot drift.

use gp_classic::matching::shuffled_sorted_edges;
use ppn_graph::matching::Matching;
use ppn_graph::prng::XorShift128Plus;
use ppn_graph::{EdgeId, GraphView, NodeId};

/// One Lloyd assignment step by linear scan: for each value, the index of
/// the nearest centroid, ties to the smallest centroid index (`min_by`
/// keeps the first minimal element). Reference oracle for
/// [`assign_fast`]; O(n·k).
pub fn assign_reference(values: &[f64], centroids: &[f64]) -> Vec<usize> {
    values
        .iter()
        .map(|&v| {
            centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (v - **a)
                        .abs()
                        .partial_cmp(&(v - **b).abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(c, _)| c)
                .unwrap_or(0)
        })
        .collect()
}

/// One Lloyd assignment step in O((n + k)·log k): sort the centroids
/// (keeping the smallest original index per duplicated value), binary
/// search each value's insertion point, and compare only the two
/// bracketing centroids with the same float operations as the reference
/// scan. Produces the identical assignment (property-tested).
pub fn assign_fast(values: &[f64], centroids: &[f64]) -> Vec<usize> {
    let mut out = vec![0usize; values.len()];
    let mut sorted = Vec::new();
    assign_fast_into(values, centroids, &mut sorted, &mut out);
    out
}

/// [`assign_fast`] writing into caller-owned buffers so the Lloyd loop
/// stays allocation-free across iterations.
fn assign_fast_into(
    values: &[f64],
    centroids: &[f64],
    sorted: &mut Vec<(f64, u32)>,
    out: &mut [usize],
) {
    debug_assert_eq!(values.len(), out.len());
    if centroids.is_empty() {
        out.fill(0);
        return;
    }
    sorted.clear();
    sorted.extend(centroids.iter().enumerate().map(|(i, &c)| (c, i as u32)));
    // sort by value then index: stable position of duplicates, with the
    // smallest original index first so dedup keeps exactly the centroid
    // the reference's first-minimal-index rule would pick
    sorted.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    sorted.dedup_by(|next, prev| next.0 == prev.0);
    for (i, &v) in values.iter().enumerate() {
        let hi = sorted.partition_point(|&(c, _)| c < v);
        let best = if hi == 0 {
            sorted[0].1
        } else if hi == sorted.len() {
            sorted[hi - 1].1
        } else {
            let (cl, il) = sorted[hi - 1];
            let (ch, ih) = sorted[hi];
            // exact same distance expressions as the reference scan, so
            // float rounding can never disagree
            let dl = (v - cl).abs();
            let dh = (v - ch).abs();
            if dl < dh {
                il
            } else if dh < dl {
                ih
            } else {
                il.min(ih)
            }
        };
        out[i] = best as usize;
    }
}

/// 1-D Lloyd's k-means over `values`; returns the cluster index of each
/// element. Deterministic given the seed; empty clusters are dropped.
/// `fast` selects the assignment implementation — identical results
/// either way (the perf harness runs both to price the difference).
fn kmeans_1d_impl(values: &[f64], k: usize, seed: u64, iters: usize, fast: bool) -> Vec<usize> {
    let n = values.len();
    let k = k.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    // init: k quantile seeds over the sorted values (deterministic,
    // spread across the range), jittered slightly by the seed for
    // restart diversity
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut rng = XorShift128Plus::new(seed);
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let q = (i * (n - 1)) / k.max(1);
            let jitter = (rng.next_u64() % 100) as f64 / 1e4;
            sorted[q] + jitter
        })
        .collect();

    let mut assign = vec![0usize; n];
    let mut next = vec![0usize; n];
    let mut sort_buf: Vec<(f64, u32)> = Vec::new();
    let mut sums = vec![0.0; k];
    let mut counts = vec![0usize; k];
    for _ in 0..iters {
        if fast {
            assign_fast_into(values, &centroids, &mut sort_buf, &mut next);
        } else {
            next.copy_from_slice(&assign_reference(values, &centroids));
        }
        let changed = next != assign;
        assign.copy_from_slice(&next);
        sums.fill(0.0);
        counts.fill(0);
        for (i, &c) in assign.iter().enumerate() {
            sums[c] += values[i];
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

/// 1-D k-means with the O((n + k)·log k) assignment step.
pub fn kmeans_1d(values: &[f64], k: usize, seed: u64, iters: usize) -> Vec<usize> {
    kmeans_1d_impl(values, k, seed, iters, true)
}

/// 1-D k-means with the original O(n·k) Lloyd scan. Perf-harness
/// baseline; identical output to [`kmeans_1d`] (property-tested).
pub fn kmeans_1d_reference(values: &[f64], k: usize, seed: u64, iters: usize) -> Vec<usize> {
    kmeans_1d_impl(values, k, seed, iters, false)
}

fn kmeans_matching_impl<G: GraphView>(
    g: &G,
    seed: u64,
    edges: &[(u64, u32)],
    fast: bool,
) -> Matching {
    let n = g.num_nodes();
    let mut m = Matching::empty(n);
    if n < 2 {
        return m;
    }
    let values: Vec<f64> = (0..n)
        .map(|v| g.node_weight(NodeId::from_index(v)) as f64)
        .collect();
    let k = (n / 8).max(2).min(n);
    let clusters = kmeans_1d_impl(&values, k, seed, 32, fast);

    // heavy-edge scan restricted to same-cluster endpoints
    for &(w, eid) in edges {
        let (u, v, _) = g.edge(EdgeId(eid));
        if clusters[u.index()] != clusters[v.index()] {
            continue;
        }
        if !m.is_matched(u) && !m.is_matched(v) {
            m.add_pair_absorbing(u, v, w);
        }
    }
    // second sweep: allow cross-cluster pairs for still-unmatched nodes
    // so the contraction keeps shrinking (pure within-cluster matching
    // can stall on weight-diverse graphs)
    for &(w, eid) in edges {
        let (u, v, _) = g.edge(EdgeId(eid));
        if !m.is_matched(u) && !m.is_matched(v) {
            m.add_pair_absorbing(u, v, w);
        }
    }
    m
}

/// K-means matching: cluster nodes by weight, then heavy-edge match
/// within each cluster. Nodes whose entire neighbourhood lies in other
/// clusters stay unmatched (they survive as singletons, exactly like in
/// the other matchings).
pub fn kmeans_matching<G: GraphView>(g: &G, seed: u64) -> Matching {
    let mut edges = Vec::new();
    shuffled_sorted_edges(g, seed ^ 0x4B4D_4541_4E53, &mut edges);
    kmeans_matching_impl(g, seed, &edges, true)
}

/// K-means matching over a prepared `(weight, edge id)` order (see
/// `gp_classic::shuffled_sorted_edges`): the per-level tournament builds
/// the order once and shares it with heavy-edge matching. `seed` still
/// drives the k-means centroid jitter.
pub fn kmeans_matching_prepared<G: GraphView>(g: &G, seed: u64, edges: &[(u64, u32)]) -> Matching {
    kmeans_matching_impl(g, seed, edges, true)
}

/// [`kmeans_matching_prepared`] with the reference Lloyd scan — the
/// perf-harness baseline backend. Identical output.
pub fn kmeans_matching_prepared_reference<G: GraphView>(
    g: &G,
    seed: u64,
    edges: &[(u64, u32)],
) -> Matching {
    kmeans_matching_impl(g, seed, edges, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::WeightedGraph;

    #[test]
    fn kmeans_1d_separates_two_blobs() {
        let values = vec![1.0, 1.1, 0.9, 10.0, 10.2, 9.8];
        let assign = kmeans_1d(&values, 2, 1, 50);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[1], assign[2]);
        assert_eq!(assign[3], assign[4]);
        assert_eq!(assign[4], assign[5]);
        assert_ne!(assign[0], assign[3]);
    }

    #[test]
    fn kmeans_1d_handles_degenerate_inputs() {
        assert!(kmeans_1d(&[], 3, 1, 10).is_empty());
        assert_eq!(kmeans_1d(&[5.0], 3, 1, 10), vec![0]);
        let same = kmeans_1d(&[2.0, 2.0, 2.0], 2, 1, 10);
        assert_eq!(same.len(), 3);
    }

    #[test]
    fn fast_assignment_equals_reference_on_tricky_inputs() {
        // duplicates, exact midpoints, unsorted centroids, out-of-range
        // queries — every branch of the bracketing logic
        let cases: &[(&[f64], &[f64])] = &[
            (&[1.0, 2.0, 3.0], &[2.0, 2.0, 5.0]),
            (&[2.0], &[1.0, 3.0]),         // exact midpoint tie
            (&[4.0], &[5.0, 3.0]),         // midpoint with unsorted centroids
            (&[-10.0, 10.0], &[0.0, 1.0]), // outside the centroid range
            (&[0.5, 1.5, 2.5], &[3.0, 1.0, 2.0, 0.0]),
            (&[7.0, 7.0], &[7.0, 7.0, 7.0]), // all duplicates
        ];
        for (values, centroids) in cases {
            assert_eq!(
                assign_fast(values, centroids),
                assign_reference(values, centroids),
                "values {values:?} centroids {centroids:?}"
            );
        }
    }

    #[test]
    fn fast_kmeans_equals_reference_kmeans() {
        for seed in 0..16u64 {
            let values: Vec<f64> = (0..200)
                .map(|i| ((seed.rotate_left(i as u32) % 97) as f64) / 3.0)
                .collect();
            for k in [2usize, 5, 25, 100] {
                assert_eq!(
                    kmeans_1d(&values, k, seed, 32),
                    kmeans_1d_reference(&values, k, seed, 32),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn matching_is_valid_and_pairs_similar_weights() {
        // two weight classes: 8 light (w=10) in a cycle, 8 heavy (w=100)
        // in a cycle, one light-heavy bridge
        let mut g = WeightedGraph::new();
        let light: Vec<_> = (0..8).map(|_| g.add_node(10)).collect();
        let heavy: Vec<_> = (0..8).map(|_| g.add_node(100)).collect();
        for i in 0..8 {
            g.add_edge(light[i], light[(i + 1) % 8], 5).unwrap();
            g.add_edge(heavy[i], heavy[(i + 1) % 8], 5).unwrap();
        }
        g.add_edge(light[0], heavy[0], 5).unwrap();
        let m = kmeans_matching(&g, 3);
        assert!(m.validate(&g));
        // most pairs stay within a weight class
        let mut same_class = 0;
        let mut cross = 0;
        for v in g.node_ids() {
            if let Some(u) = m.mate_of(v) {
                if v < u {
                    let wv = g.node_weight(v);
                    let wu = g.node_weight(u);
                    if wv == wu {
                        same_class += 1;
                    } else {
                        cross += 1;
                    }
                }
            }
        }
        assert!(
            same_class >= 6,
            "expected mostly within-class pairs, got {same_class} same / {cross} cross"
        );
    }

    #[test]
    fn matching_deterministic_per_seed() {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..10).map(|i| g.add_node(1 + i % 3)).collect();
        for i in 0..10 {
            g.add_edge(n[i], n[(i + 1) % 10], 1 + (i as u64 % 4))
                .unwrap();
        }
        assert_eq!(kmeans_matching(&g, 5), kmeans_matching(&g, 5));
    }

    #[test]
    fn prepared_reference_backend_is_identical() {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..24).map(|i| g.add_node(1 + i % 5)).collect();
        for i in 0..24 {
            g.add_edge(n[i], n[(i + 1) % 24], 1 + (i as u64 % 7))
                .unwrap();
            let _ = g.add_or_merge_edge(n[i], n[(i + 5) % 24], 2);
        }
        let mut edges = Vec::new();
        for seed in 0..6 {
            shuffled_sorted_edges(&g, seed, &mut edges);
            let fast = kmeans_matching_prepared(&g, seed, &edges);
            let slow = kmeans_matching_prepared_reference(&g, seed, &edges);
            assert_eq!(fast, slow, "seed {seed}");
            assert_eq!(fast.absorbed(), fast.absorbed_weight(&g));
        }
    }

    #[test]
    fn single_node_graph_unmatched() {
        let g = WeightedGraph::with_uniform_nodes(1, 4);
        let m = kmeans_matching(&g, 1);
        assert_eq!(m.matched_nodes(), 0);
    }
}

//! K-Means matching (paper §IV-A, third heuristic).
//!
//! The paper describes clustering nodes "on the basis of their weight"
//! and matching "a subset of near nodes ... accordingly" (after Khan's
//! multilevel-TSP scheme). Our concretisation, documented in DESIGN.md:
//!
//! 1. run 1-D Lloyd's k-means on the node *resource weights* with
//!    `max(2, n/8)` clusters — this groups processes of similar size;
//! 2. inside each cluster, match graph-adjacent nodes greedily by
//!    heaviest connecting edge.
//!
//! The effect is a contraction whose coarse nodes have homogeneous
//! weights — exactly what the resource-constrained initial partitioning
//! wants to see (uneven coarse nodes make `Rmax` bin-packing needlessly
//! hard). Pairing *within* a weight cluster is the property the paper's
//! text emphasises; the greedy heavy-edge tie-break keeps the cut low.

use ppn_graph::matching::Matching;
use ppn_graph::prng::XorShift128Plus;
use ppn_graph::WeightedGraph;

/// 1-D Lloyd's k-means over `values`; returns the cluster index of each
/// element. Deterministic given the seed; empty clusters are dropped.
fn kmeans_1d(values: &[f64], k: usize, seed: u64, iters: usize) -> Vec<usize> {
    let n = values.len();
    let k = k.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    // init: k quantile seeds over the sorted values (deterministic,
    // spread across the range), jittered slightly by the seed for
    // restart diversity
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut rng = XorShift128Plus::new(seed);
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let q = (i * (n - 1)) / k.max(1);
            let jitter = (rng.next_u64() % 100) as f64 / 1e4;
            sorted[q] + jitter
        })
        .collect();

    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        let mut changed = false;
        for (i, &v) in values.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    (v - **a)
                        .abs()
                        .partial_cmp(&(v - **b).abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(c, _)| c)
                .unwrap_or(0);
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for (i, &c) in assign.iter().enumerate() {
            sums[c] += values[i];
            counts[c] += 1;
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c] / counts[c] as f64;
            }
        }
        if !changed {
            break;
        }
    }
    assign
}

/// K-means matching: cluster nodes by weight, then heavy-edge match
/// within each cluster. Nodes whose entire neighbourhood lies in other
/// clusters stay unmatched (they survive as singletons, exactly like in
/// the other matchings).
pub fn kmeans_matching(g: &WeightedGraph, seed: u64) -> Matching {
    let n = g.num_nodes();
    let mut m = Matching::empty(n);
    if n < 2 {
        return m;
    }
    let values: Vec<f64> = g.node_ids().map(|v| g.node_weight(v) as f64).collect();
    let k = (n / 8).max(2).min(n);
    let clusters = kmeans_1d(&values, k, seed, 32);

    // heavy-edge scan restricted to same-cluster endpoints
    let mut edges: Vec<(u64, u32)> = g.edge_ids().map(|e| (g.edge_weight(e), e.0)).collect();
    let mut rng = XorShift128Plus::new(seed ^ 0x4B4D_4541_4E53);
    rng.shuffle(&mut edges);
    edges.sort_by_key(|e| std::cmp::Reverse(e.0));
    for &(_, eid) in &edges {
        let (u, v, _) = g.edge(ppn_graph::EdgeId(eid));
        if clusters[u.index()] != clusters[v.index()] {
            continue;
        }
        if !m.is_matched(u) && !m.is_matched(v) {
            m.add_pair(u, v);
        }
    }
    // second sweep: allow cross-cluster pairs for still-unmatched nodes
    // so the contraction keeps shrinking (pure within-cluster matching
    // can stall on weight-diverse graphs)
    for &(_, eid) in &edges {
        let (u, v, _) = g.edge(ppn_graph::EdgeId(eid));
        if !m.is_matched(u) && !m.is_matched(v) {
            m.add_pair(u, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_1d_separates_two_blobs() {
        let values = vec![1.0, 1.1, 0.9, 10.0, 10.2, 9.8];
        let assign = kmeans_1d(&values, 2, 1, 50);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[1], assign[2]);
        assert_eq!(assign[3], assign[4]);
        assert_eq!(assign[4], assign[5]);
        assert_ne!(assign[0], assign[3]);
    }

    #[test]
    fn kmeans_1d_handles_degenerate_inputs() {
        assert!(kmeans_1d(&[], 3, 1, 10).is_empty());
        assert_eq!(kmeans_1d(&[5.0], 3, 1, 10), vec![0]);
        let same = kmeans_1d(&[2.0, 2.0, 2.0], 2, 1, 10);
        assert_eq!(same.len(), 3);
    }

    #[test]
    fn matching_is_valid_and_pairs_similar_weights() {
        // two weight classes: 8 light (w=10) in a cycle, 8 heavy (w=100)
        // in a cycle, one light-heavy bridge
        let mut g = WeightedGraph::new();
        let light: Vec<_> = (0..8).map(|_| g.add_node(10)).collect();
        let heavy: Vec<_> = (0..8).map(|_| g.add_node(100)).collect();
        for i in 0..8 {
            g.add_edge(light[i], light[(i + 1) % 8], 5).unwrap();
            g.add_edge(heavy[i], heavy[(i + 1) % 8], 5).unwrap();
        }
        g.add_edge(light[0], heavy[0], 5).unwrap();
        let m = kmeans_matching(&g, 3);
        assert!(m.validate(&g));
        // most pairs stay within a weight class
        let mut same_class = 0;
        let mut cross = 0;
        for v in g.node_ids() {
            if let Some(u) = m.mate_of(v) {
                if v < u {
                    let wv = g.node_weight(v);
                    let wu = g.node_weight(u);
                    if wv == wu {
                        same_class += 1;
                    } else {
                        cross += 1;
                    }
                }
            }
        }
        assert!(
            same_class >= 6,
            "expected mostly within-class pairs, got {same_class} same / {cross} cross"
        );
    }

    #[test]
    fn matching_deterministic_per_seed() {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..10).map(|i| g.add_node(1 + i % 3)).collect();
        for i in 0..10 {
            g.add_edge(n[i], n[(i + 1) % 10], 1 + (i as u64 % 4))
                .unwrap();
        }
        assert_eq!(kmeans_matching(&g, 5), kmeans_matching(&g, 5));
    }

    #[test]
    fn single_node_graph_unmatched() {
        let g = WeightedGraph::with_uniform_nodes(1, 4);
        let m = kmeans_matching(&g, 1);
        assert_eq!(m.matched_nodes(), 0);
    }
}

//! Result and trace types for the GP partitioner.

use crate::params::MatchingKind;
use ppn_graph::metrics::PartitionQuality;
use ppn_graph::{ConstraintReport, Degradation, Partition};
use serde::{Deserialize, Serialize};

/// Trace of one intermediate-clustering attempt inside one V-cycle —
/// enough to reconstruct the paper's Fig. 1 style multilevel diagram and
/// to audit the goodness-driven selection.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CycleTrace {
    /// V-cycle index (0-based).
    pub cycle: usize,
    /// Intermediate attempt index within the cycle.
    pub attempt: usize,
    /// Node counts of the hierarchy graphs, finest first.
    pub hierarchy_sizes: Vec<usize>,
    /// Winning matching heuristic per level, finest first.
    pub matchings: Vec<MatchingKind>,
    /// Index of the intermediate evaluation level (into
    /// `hierarchy_sizes`).
    pub mid_level: usize,
    /// Goodness key of the candidate at the intermediate level
    /// `(violations, magnitude, cut)` — lower is better.
    pub goodness_at_mid: (u64, u64, u64),
    /// Whether this attempt won the cycle's a-posteriori comparison.
    pub selected: bool,
}

/// Wall-clock seconds spent in each GP phase, summed over every cycle
/// and attempt of a run. Since the trace subsystem landed this is a
/// *view*: each field is accumulated from the same `timed_span` sites
/// that emit `ppn_graph::trace` spans (`gp:coarsen`, `gp:initial`,
/// `gp:refine`), so a trace session's span totals and these sums agree
/// to within clock-read jitter. Timings are measured, not derived from
/// the result — two runs with the same seed produce identical
/// partitions but different timings, so equality of results must
/// ignore this field.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PhaseSeconds {
    /// Coarsening (matching tournament + contraction).
    pub coarsen_s: f64,
    /// Greedy constrained initial partitioning incl. restarts.
    pub initial_s: f64,
    /// Constrained refinement while un-coarsening.
    pub refine_s: f64,
}

impl PhaseSeconds {
    /// Sum of all phases.
    pub fn total_s(&self) -> f64 {
        self.coarsen_s + self.initial_s + self.refine_s
    }
}

/// Outcome of a GP run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GpResult {
    /// The best k-way partition found.
    pub partition: Partition,
    /// Quality metrics of that partition.
    pub quality: PartitionQuality,
    /// Constraint check against the requested `Rmax`/`Bmax`.
    pub report: ConstraintReport,
    /// True when both constraints hold.
    pub feasible: bool,
    /// V-cycles executed before returning.
    pub cycles_used: usize,
    /// Per-attempt traces.
    pub trace: Vec<CycleTrace>,
    /// Wall-clock seconds per phase, summed over all cycles.
    #[serde(default)]
    pub phases: PhaseSeconds,
    /// Set when a [`Budget`](ppn_graph::Budget) cut the run short and
    /// the partition is best-so-far rather than fully converged.
    #[serde(default)]
    pub degraded: Option<Degradation>,
}

/// The partitioner exhausted its cycle budget without meeting the
/// constraints — the paper's "either impossible or we have to give the
/// tool more time" outcome. The best attempt is carried along.
#[derive(Clone, Debug)]
pub struct GpInfeasible {
    /// Best (least-violating) result found.
    pub best: GpResult,
}

impl std::fmt::Display for GpInfeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "partitioning with these constraints is either impossible or needs more \
             iterations: after {} cycle(s) the best candidate still has {} violation(s) \
             (magnitude {})",
            self.best.cycles_used,
            self.best.report.violation_count(),
            self.best.report.violation_magnitude()
        )
    }
}

impl std::error::Error for GpInfeasible {}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::metrics::CutMatrix;

    fn dummy_result(feasible: bool) -> GpResult {
        let partition = Partition::from_assignment(vec![0, 1], 2).unwrap();
        let quality = PartitionQuality {
            total_cut: 5,
            max_local_bandwidth: 5,
            max_resource: 10,
            part_resources: vec![10, 8],
            cut_matrix: CutMatrix::zero(2),
        };
        let report = ConstraintReport {
            rmax: 10,
            bmax: 10,
            resource_violations: if feasible { vec![] } else { vec![(0, 12)] },
            bandwidth_violations: vec![],
        };
        GpResult {
            partition,
            quality,
            report,
            feasible,
            cycles_used: 3,
            trace: vec![],
            phases: PhaseSeconds::default(),
            degraded: None,
        }
    }

    #[test]
    fn infeasible_message_mentions_paper_wording() {
        let err = GpInfeasible {
            best: dummy_result(false),
        };
        let msg = err.to_string();
        assert!(msg.contains("impossible"));
        assert!(msg.contains("3 cycle(s)"));
        assert!(msg.contains("1 violation(s)"));
    }

    #[test]
    fn result_serialises() {
        let r = dummy_result(true);
        let s = serde_json::to_string(&r).unwrap();
        let back: GpResult = serde_json::from_str(&s).unwrap();
        assert_eq!(back.feasible, r.feasible);
        assert_eq!(back.quality.total_cut, 5);
    }

    #[test]
    fn phase_seconds_total_and_default() {
        let p = PhaseSeconds {
            coarsen_s: 1.0,
            initial_s: 0.25,
            refine_s: 0.5,
        };
        assert!((p.total_s() - 1.75).abs() < 1e-12);
        assert_eq!(PhaseSeconds::default().total_s(), 0.0);
    }
}

//! Tuning parameters of the GP algorithm, with the paper's defaults.

use serde::{Deserialize, Serialize};

/// Which matching heuristics the coarsening phase may use (§IV-A lists
/// three; all are tried per level and the best contraction is kept).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchingKind {
    /// Random maximal matching.
    Random,
    /// Heavy-edge matching (descending edge-weight scan).
    HeavyEdge,
    /// K-means matching (weight-clustered pairing).
    KMeans,
    /// Heavy-edge matching in the METIS node-scan style (random node
    /// order, each node grabs its heaviest free neighbour). Not one of
    /// the paper's three; entered into the tournament only when
    /// [`GpParams::node_scan_hem`] is set.
    HeavyEdgeNodeScan,
}

impl MatchingKind {
    /// All three heuristics, the paper's configuration.
    pub const ALL: [MatchingKind; 3] = [
        MatchingKind::Random,
        MatchingKind::HeavyEdge,
        MatchingKind::KMeans,
    ];

    /// The paper's three plus the node-scan HEM variant (ablations and
    /// the matching bench).
    pub const WITH_NODE_SCAN: [MatchingKind; 4] = [
        MatchingKind::Random,
        MatchingKind::HeavyEdge,
        MatchingKind::KMeans,
        MatchingKind::HeavyEdgeNodeScan,
    ];
}

impl std::fmt::Display for MatchingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatchingKind::Random => write!(f, "random"),
            MatchingKind::HeavyEdge => write!(f, "heavy-edge"),
            MatchingKind::KMeans => write!(f, "k-means"),
            MatchingKind::HeavyEdgeNodeScan => write!(f, "hem-node-scan"),
        }
    }
}

/// Parameters of [`GpPartitioner`](crate::GpPartitioner).
///
/// Defaults follow the paper: coarsen to 100 nodes, 10 initial-
/// partitioning restarts, all three matching heuristics, and a bounded
/// number of constraint-repair cycles before reporting infeasibility.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GpParams {
    /// Coarsening stops at this many nodes ("default is 100", §IV).
    pub coarsen_to: usize,
    /// Random restarts of the greedy initial partitioning ("10 is
    /// default", §IV-B).
    pub initial_restarts: usize,
    /// Matching heuristics tried at every coarsening level.
    pub matchings: Vec<MatchingKind>,
    /// Maximum cyclic un-coarsen/re-coarsen V-cycles before the
    /// partitioner reports that the constraints look unsatisfiable
    /// ("a predetermined number of iterations", §IV-C).
    pub max_cycles: usize,
    /// Intermediate re-clusterings explored per cycle, compared with the
    /// goodness function ("we generate different intermediate
    /// clusterings, that are compared a posteriori", §IV).
    pub intermediate_attempts: usize,
    /// Constrained-refinement sweeps per hierarchy level.
    pub refine_passes: usize,
    /// Root seed for every stochastic component.
    pub seed: u64,
    /// Evaluate restarts/matchings in parallel with rayon (results are
    /// identical either way; selection uses a total order).
    pub parallel: bool,
    /// Hierarchy levels with at least this many nodes refine with the
    /// parallel frozen-evaluation sweep
    /// ([`constrained_refine_parallel_csr`](crate::refine::constrained_refine_parallel_csr))
    /// instead of the serial engine — deterministic at any thread count
    /// and sharing the serial engine's fixed points, but free to take a
    /// different (equally valid) move sequence, so the default keeps
    /// every level below a million-node scale on the serial path and
    /// historical outputs bit-identical. Only effective when
    /// [`parallel`](GpParams::parallel) is set; `usize::MAX` disables.
    #[serde(default = "default_parallel_refine_min_nodes")]
    pub parallel_refine_min_nodes: usize,
    /// Enter the node-scan HEM variant as a fourth tournament entrant
    /// (off by default: the paper runs exactly three heuristics).
    pub node_scan_hem: bool,
}

fn default_parallel_refine_min_nodes() -> usize {
    200_000
}

impl Default for GpParams {
    fn default() -> Self {
        GpParams {
            coarsen_to: 100,
            initial_restarts: 10,
            matchings: MatchingKind::ALL.to_vec(),
            max_cycles: 10,
            intermediate_attempts: 3,
            refine_passes: 8,
            seed: 0xCA77A,
            parallel: true,
            parallel_refine_min_nodes: default_parallel_refine_min_nodes(),
            node_scan_hem: false,
        }
    }
}

impl GpParams {
    /// Same parameters, different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Restrict the matching heuristics (ablation studies).
    pub fn with_matchings(mut self, matchings: Vec<MatchingKind>) -> Self {
        assert!(!matchings.is_empty(), "at least one matching required");
        self.matchings = matchings;
        self
    }

    /// Disable the cyclic re-coarsening (single V-cycle; ablation).
    pub fn single_cycle(mut self) -> Self {
        self.max_cycles = 1;
        self.intermediate_attempts = 1;
        self
    }

    /// The matchings the coarsening tournament actually runs: the
    /// configured list, extended with node-scan HEM when
    /// [`node_scan_hem`](GpParams::node_scan_hem) is set.
    pub fn effective_matchings(&self) -> Vec<MatchingKind> {
        let mut kinds = self.matchings.clone();
        if self.node_scan_hem && !kinds.contains(&MatchingKind::HeavyEdgeNodeScan) {
            kinds.push(MatchingKind::HeavyEdgeNodeScan);
        }
        kinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = GpParams::default();
        assert_eq!(p.coarsen_to, 100);
        assert_eq!(p.initial_restarts, 10);
        assert_eq!(p.matchings.len(), 3);
        assert!(p.max_cycles >= 1);
    }

    #[test]
    fn builders_compose() {
        let p = GpParams::default()
            .with_seed(7)
            .with_matchings(vec![MatchingKind::HeavyEdge])
            .single_cycle();
        assert_eq!(p.seed, 7);
        assert_eq!(p.matchings, vec![MatchingKind::HeavyEdge]);
        assert_eq!(p.max_cycles, 1);
    }

    #[test]
    #[should_panic]
    fn empty_matchings_rejected() {
        let _ = GpParams::default().with_matchings(vec![]);
    }

    #[test]
    fn matching_kind_display() {
        assert_eq!(MatchingKind::Random.to_string(), "random");
        assert_eq!(MatchingKind::HeavyEdge.to_string(), "heavy-edge");
        assert_eq!(MatchingKind::KMeans.to_string(), "k-means");
        assert_eq!(MatchingKind::HeavyEdgeNodeScan.to_string(), "hem-node-scan");
    }

    #[test]
    fn parallel_refine_threshold_defaults_when_absent() {
        // a params blob serialized before the field existed still parses
        // and lands on the documented default
        let old = r#"{"coarsen_to":100,"initial_restarts":10,"matchings":["Random"],
                      "max_cycles":10,"intermediate_attempts":3,"refine_passes":8,
                      "seed":1,"parallel":true,"node_scan_hem":false}"#;
        let p: GpParams = serde_json::from_str(old).unwrap();
        assert_eq!(p.parallel_refine_min_nodes, 200_000);
        assert_eq!(
            p.parallel_refine_min_nodes,
            GpParams::default().parallel_refine_min_nodes
        );
    }

    #[test]
    fn node_scan_flag_extends_the_tournament() {
        let p = GpParams::default();
        assert_eq!(p.effective_matchings(), MatchingKind::ALL.to_vec());
        let p = GpParams {
            node_scan_hem: true,
            ..GpParams::default()
        };
        assert_eq!(
            p.effective_matchings(),
            MatchingKind::WITH_NODE_SCAN.to_vec()
        );
        // idempotent when the kind is already listed
        let p = GpParams {
            node_scan_hem: true,
            matchings: MatchingKind::WITH_NODE_SCAN.to_vec(),
            ..GpParams::default()
        };
        assert_eq!(p.effective_matchings().len(), 4);
    }
}

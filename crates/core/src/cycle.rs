//! The GP V-cycle driver (paper §IV).
//!
//! One *cycle* is: coarsen the input to `coarsen_to` nodes with
//! best-of-three matchings → greedy constrained initial partitioning with
//! restarts → constrained refinement while un-coarsening. Unlike textbook
//! MLKWP, GP does not un-coarsen in one shot: within each cycle several
//! *intermediate clusterings* are generated (different coarsening RNG
//! streams), each refined up to an intermediate hierarchy level, compared
//! a posteriori with the goodness function, and only the winner continues
//! to the top. If the top-level partition still violates the constraints
//! the whole process repeats — re-coarsening "randomly, cyclically" — up
//! to `max_cycles` times before reporting the paper's
//! impossible-or-more-time message.

use crate::coarsen::{gp_coarsen_flat, FlatHierarchy};
use crate::initial::{greedy_initial_partition, InitialOptions};
use crate::params::GpParams;
use crate::refine::{constrained_refine_csr, constrained_refine_parallel_csr, RefineOptions};
use crate::report::{CycleTrace, GpInfeasible, GpResult, PhaseSeconds};
use ppn_graph::metrics::PartitionQuality;
use ppn_graph::prng::derive_seed;
use ppn_graph::{Constraints, Partition, WeightedGraph};
use std::time::Instant;

/// Refine `p` upward through arena levels `from..to` (finest-first
/// indexing, iterated coarse→fine). On entry `p` lives on the graph
/// *coarser* than level `to-1` — projecting through `hier.map(i)` lands
/// on level `i`. Each level refines directly on its arena slice
/// ([`CsrView`](ppn_graph::CsrView)) — no per-level graph or CSR is
/// materialised. Levels at or above
/// [`parallel_refine_min_nodes`](GpParams::parallel_refine_min_nodes)
/// take the parallel frozen-evaluation sweep.
fn refine_up(
    hier: &FlatHierarchy,
    range: std::ops::Range<usize>,
    mut p: Partition,
    c: &Constraints,
    params: &GpParams,
    stream: u64,
) -> Partition {
    for i in range.rev() {
        p = p.project(hier.map(i));
        let level = hier.level(i).csr_view();
        let opts = RefineOptions {
            max_passes: params.refine_passes,
            seed: derive_seed(params.seed, stream ^ (i as u64) << 8),
            protect_nonempty: true,
        };
        if params.parallel && level.num_nodes() >= params.parallel_refine_min_nodes {
            constrained_refine_parallel_csr(level, &mut p, c, &opts);
        } else {
            constrained_refine_csr(level, &mut p, c, &opts);
        }
    }
    p
}

/// Run the full GP algorithm. Returns `Ok` when the constraints are met,
/// `Err(GpInfeasible)` (carrying the best attempt) otherwise.
pub fn gp_partition(
    g: &WeightedGraph,
    k: usize,
    c: &Constraints,
    params: &GpParams,
) -> Result<GpResult, Box<GpInfeasible>> {
    assert!(k >= 1, "k must be at least 1");
    assert!(g.num_nodes() > 0, "cannot partition an empty graph");

    let mut best: Option<((u64, u64, u64), Partition)> = None;
    let mut trace: Vec<CycleTrace> = Vec::new();
    let mut cycles_used = 0;
    let mut phases = PhaseSeconds::default();
    let matchings = params.effective_matchings();

    'cycles: for cycle in 0..params.max_cycles.max(1) {
        cycles_used = cycle + 1;
        let cycle_seed = derive_seed(params.seed, 0xC1C + cycle as u64);

        // hierarchy for this cycle ("go back to coarsening phase …
        // randomly, cyclically") — built in the flat level arena; the
        // Cow-based gp_coarsen survives as the property-test oracle
        let t0 = Instant::now();
        let hier = gp_coarsen_flat(g, &matchings, params.coarsen_to, cycle_seed);
        phases.coarsen_s += t0.elapsed().as_secs_f64();
        let levels = hier.depth() - 1;
        let mid = levels / 2;
        let sizes = hier.size_trace();
        let level_winners = hier.winners.clone();
        // the coarsest graph is tiny (~coarsen_to nodes); materialise it
        // once per cycle for the initial partitioner
        let coarsest = hier.coarsest_graph();

        // generate intermediate clustering candidates
        let attempts = params.intermediate_attempts.max(1);
        let mut candidates: Vec<((u64, u64, u64), Partition)> = Vec::with_capacity(attempts);
        for attempt in 0..attempts {
            let attempt_seed = derive_seed(cycle_seed, attempt as u64);
            let t0 = Instant::now();
            let p0 = greedy_initial_partition(
                &coarsest,
                k,
                c,
                &InitialOptions {
                    restarts: params.initial_restarts,
                    repair_passes: params.refine_passes,
                    seed: attempt_seed,
                    parallel: params.parallel,
                },
            );
            phases.initial_s += t0.elapsed().as_secs_f64();
            // refine from the coarsest up to the intermediate level
            let t0 = Instant::now();
            let p_mid = refine_up(&hier, mid..levels, p0, c, params, attempt_seed);
            phases.refine_s += t0.elapsed().as_secs_f64();
            // level `mid` exists for every mid <= levels (level `levels`
            // is the coarsest); measure it straight off the arena slice
            let goodness = PartitionQuality::measure_csr(hier.level(mid).csr_view(), &p_mid)
                .goodness_key(c.rmax, c.bmax);
            trace.push(CycleTrace {
                cycle,
                attempt,
                hierarchy_sizes: sizes.clone(),
                matchings: level_winners.clone(),
                mid_level: mid,
                goodness_at_mid: goodness,
                selected: false,
            });
            candidates.push((goodness, p_mid));
        }

        // a-posteriori selection of the best intermediate clustering
        let winner_idx = candidates
            .iter()
            .enumerate()
            .min_by_key(|(i, (good, _))| (*good, *i))
            .map(|(i, _)| i)
            .expect("at least one attempt");
        let trace_base = trace.len() - attempts;
        trace[trace_base + winner_idx].selected = true;
        let (_, p_mid) = candidates.swap_remove(winner_idx);

        // continue the winner to the top
        let t0 = Instant::now();
        let p_top = refine_up(
            &hier,
            0..mid,
            p_mid,
            c,
            params,
            derive_seed(cycle_seed, 0x70),
        );
        phases.refine_s += t0.elapsed().as_secs_f64();
        let quality = PartitionQuality::measure(g, &p_top);
        let goodness = quality.goodness_key(c.rmax, c.bmax);

        let is_better = match &best {
            None => true,
            Some((bg, _)) => goodness < *bg,
        };
        if is_better {
            best = Some((goodness, p_top));
        }
        // feasible ⇒ violations are zero ⇒ goodness.0 == 0
        if best.as_ref().map(|(g, _)| g.0 == 0).unwrap_or(false) {
            break 'cycles;
        }
    }

    let (_, partition) = best.expect("at least one cycle ran");
    let quality = PartitionQuality::measure(g, &partition);
    let report = c.check_quality(&quality);
    let feasible = report.is_feasible();
    let result = GpResult {
        partition,
        quality,
        report,
        feasible,
        cycles_used,
        trace,
        phases,
    };
    if feasible {
        Ok(result)
    } else {
        Err(Box::new(GpInfeasible { best: result }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::metrics::edge_cut;

    /// Four triads with light bridges — feasible for sensible constraints.
    fn four_triads() -> WeightedGraph {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..12)
            .map(|i| g.add_node(30 + (i as u64 % 4) * 5))
            .collect();
        for c in 0..4 {
            let b = c * 3;
            g.add_edge(n[b], n[b + 1], 8).unwrap();
            g.add_edge(n[b + 1], n[b + 2], 8).unwrap();
            g.add_edge(n[b], n[b + 2], 8).unwrap();
        }
        for c in 0..4 {
            g.add_edge(n[c * 3], n[((c + 1) % 4) * 3 + 1], 2).unwrap();
        }
        g
    }

    #[test]
    fn feasible_instance_is_solved() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let r = gp_partition(&g, 4, &c, &GpParams::default()).expect("feasible");
        assert!(r.feasible);
        assert!(r.partition.is_complete());
        assert!(c.is_feasible(&g, &r.partition));
        assert_eq!(r.quality.total_cut, edge_cut(&g, &r.partition));
    }

    #[test]
    fn impossible_instance_reports_infeasible() {
        let g = four_triads();
        // rmax below the heaviest node: provably impossible
        let c = Constraints::new(10, 1000);
        let err = gp_partition(&g, 4, &c, &GpParams::default()).unwrap_err();
        assert!(!err.best.feasible);
        assert!(err.to_string().contains("impossible"));
        assert!(err.best.partition.is_complete());
    }

    #[test]
    fn trace_records_attempts_and_selection() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let params = GpParams {
            coarsen_to: 6,
            intermediate_attempts: 3,
            ..GpParams::default()
        };
        let r = gp_partition(&g, 4, &c, &params).expect("feasible");
        assert!(!r.trace.is_empty());
        // each cycle has exactly one selected attempt
        for cyc in 0..r.cycles_used {
            let selected = r
                .trace
                .iter()
                .filter(|t| t.cycle == cyc && t.selected)
                .count();
            let total = r.trace.iter().filter(|t| t.cycle == cyc).count();
            if total > 0 {
                assert_eq!(selected, 1, "cycle {cyc} should select exactly one");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let a = gp_partition(&g, 4, &c, &GpParams::default()).unwrap();
        let b = gp_partition(&g, 4, &c, &GpParams::default()).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn phase_timings_are_recorded() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let r = gp_partition(&g, 4, &c, &GpParams::default()).unwrap();
        // every run coarsens, partitions and refines at least once
        assert!(r.phases.initial_s > 0.0, "{:?}", r.phases);
        assert!(r.phases.total_s() >= r.phases.initial_s);
    }

    #[test]
    fn early_exit_on_feasibility() {
        let g = four_triads();
        let c = Constraints::new(500, 500); // trivially feasible
        let r = gp_partition(&g, 2, &c, &GpParams::default()).unwrap();
        assert_eq!(r.cycles_used, 1, "should stop after the first cycle");
    }

    #[test]
    fn small_graph_without_coarsening_works() {
        let g = four_triads(); // 12 nodes < coarsen_to=100 → no levels
        let c = Constraints::new(150, 25);
        let r = gp_partition(&g, 4, &c, &GpParams::default()).unwrap();
        assert!(r.feasible);
        for t in &r.trace {
            assert_eq!(t.hierarchy_sizes.len(), 1);
        }
    }

    #[test]
    fn large_graph_exercises_hierarchy() {
        // 4 communities of 60 nodes each
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..240).map(|_| g.add_node(4)).collect();
        for comm in 0..4 {
            let b = comm * 60;
            for i in 0..60 {
                g.add_edge(n[b + i], n[b + (i + 1) % 60], 10).unwrap();
                g.add_edge(n[b + i], n[b + (i + 7) % 60], 6).unwrap();
            }
        }
        for comm in 0..4 {
            g.add_edge(n[comm * 60], n[((comm + 1) % 4) * 60 + 3], 2)
                .unwrap();
        }
        let c = Constraints::new(260, 40);
        let r = gp_partition(&g, 4, &c, &GpParams::default()).expect("feasible");
        assert!(r.feasible);
        assert!(
            r.trace[0].hierarchy_sizes.len() > 1,
            "240 nodes must trigger coarsening: {:?}",
            r.trace[0].hierarchy_sizes
        );
    }
}

//! The GP V-cycle driver (paper §IV).
//!
//! One *cycle* is: coarsen the input to `coarsen_to` nodes with
//! best-of-three matchings → greedy constrained initial partitioning with
//! restarts → constrained refinement while un-coarsening. Unlike textbook
//! MLKWP, GP does not un-coarsen in one shot: within each cycle several
//! *intermediate clusterings* are generated (different coarsening RNG
//! streams), each refined up to an intermediate hierarchy level, compared
//! a posteriori with the goodness function, and only the winner continues
//! to the top. If the top-level partition still violates the constraints
//! the whole process repeats — re-coarsening "randomly, cyclically" — up
//! to `max_cycles` times before reporting the paper's
//! impossible-or-more-time message.

use crate::coarsen::{gp_coarsen_flat_budgeted, FlatHierarchy};
use crate::initial::{greedy_initial_partition, InitialOptions};
use crate::params::GpParams;
use crate::refine::{constrained_refine_csr, constrained_refine_parallel_csr, RefineOptions};
use crate::report::{CycleTrace, GpInfeasible, GpResult, PhaseSeconds};
use ppn_graph::budget::{Budget, Degradation};
use ppn_graph::faultpoint::fault_point;
use ppn_graph::metrics::PartitionQuality;
use ppn_graph::prng::derive_seed;
use ppn_graph::trace;
use ppn_graph::{Constraints, Partition, WeightedGraph};

/// Refine `p` upward through arena levels `from..to` (finest-first
/// indexing, iterated coarse→fine). On entry `p` lives on the graph
/// *coarser* than level `to-1` — projecting through `hier.map(i)` lands
/// on level `i`. Each level refines directly on its arena slice
/// ([`CsrView`](ppn_graph::CsrView)) — no per-level graph or CSR is
/// materialised. Levels at or above
/// [`parallel_refine_min_nodes`](GpParams::parallel_refine_min_nodes)
/// take the parallel frozen-evaluation sweep.
///
/// The budget is consulted once per level: when it expires (or the
/// remaining wall-clock cannot fit the level's edge count) the loop
/// keeps projecting up — an O(n) must-finish step, or the partition
/// would live on the wrong graph — but skips the refinement sweeps.
#[allow(clippy::too_many_arguments)]
fn refine_up(
    hier: &FlatHierarchy,
    range: std::ops::Range<usize>,
    mut p: Partition,
    c: &Constraints,
    params: &GpParams,
    stream: u64,
    budget: &Budget,
    degraded: &mut Option<Degradation>,
) -> Partition {
    for i in range.rev() {
        let _lvl = trace::span("gp", "level", i as i64);
        p = p.project(hier.map(i));
        let level = hier.level(i).csr_view();
        trace::counter("gp", "budget_checkpoint", 1);
        if !budget.is_unlimited()
            && (budget.expired() || !budget.admits_work(level.num_edges() as u64))
        {
            degraded.get_or_insert_with(|| {
                Degradation::new(
                    "refine",
                    format!("deadline expired; projecting level {i} without refinement"),
                )
            });
            continue;
        }
        let opts = RefineOptions {
            max_passes: budget.clamp_refine_passes(params.refine_passes),
            seed: derive_seed(params.seed, stream ^ (i as u64) << 8),
            protect_nonempty: true,
        };
        // reduced-footprint budgets pin refinement to the serial sweep —
        // the parallel path clones per-shard evaluation buffers
        let parallel = params.parallel && !budget.reduced_footprint();
        if parallel && level.num_nodes() >= params.parallel_refine_min_nodes {
            constrained_refine_parallel_csr(level, &mut p, c, &opts);
        } else {
            constrained_refine_csr(level, &mut p, c, &opts);
        }
    }
    p
}

/// Run the full GP algorithm. Returns `Ok` when the constraints are met,
/// `Err(GpInfeasible)` (carrying the best attempt) otherwise.
pub fn gp_partition(
    g: &WeightedGraph,
    k: usize,
    c: &Constraints,
    params: &GpParams,
) -> Result<GpResult, Box<GpInfeasible>> {
    gp_partition_budgeted(g, k, c, params, &Budget::unlimited())
}

/// [`gp_partition`] under a cooperative [`Budget`]. Checks happen only
/// at cycle/level/attempt boundaries, so with `Budget::unlimited()` the
/// run is bit-identical to the unbudgeted entry point. On deadline
/// expiry the engine returns its best partition so far — always complete
/// and always projected to the finest graph — and records what was cut
/// short in [`GpResult::degraded`].
pub fn gp_partition_budgeted(
    g: &WeightedGraph,
    k: usize,
    c: &Constraints,
    params: &GpParams,
    budget: &Budget,
) -> Result<GpResult, Box<GpInfeasible>> {
    assert!(k >= 1, "k must be at least 1");
    assert!(g.num_nodes() > 0, "cannot partition an empty graph");

    let _run = trace::span("gp", "partition", g.num_nodes() as i64);
    let mut best: Option<((u64, u64, u64), Partition)> = None;
    let mut trace: Vec<CycleTrace> = Vec::new();
    let mut cycles_used = 0;
    let mut phases = PhaseSeconds::default();
    let mut degraded: Option<Degradation> = None;
    let matchings = params.effective_matchings();
    // Reduced-footprint budgets (the fallback driver's memory-shed
    // retry) trade quality for bytes: fewer initial restarts, a single
    // intermediate attempt, serial refinement (see refine_up).
    let initial_restarts = if budget.reduced_footprint() {
        params.initial_restarts.min(2)
    } else {
        params.initial_restarts
    };
    let intermediate_attempts = if budget.reduced_footprint() {
        1
    } else {
        params.intermediate_attempts
    };

    'cycles: for cycle in 0..params.max_cycles.max(1) {
        let _cyc = trace::span("gp", "cycle", cycle as i64);
        trace::counter("gp", "budget_checkpoint", 1);
        if cycle > 0 && budget.expired() {
            degraded.get_or_insert_with(|| {
                Degradation::new("cycle", format!("deadline expired after {cycle} cycle(s)"))
            });
            break;
        }
        cycles_used = cycle + 1;
        let cycle_seed = derive_seed(params.seed, 0xC1C + cycle as u64);

        // When the budget cannot plausibly fit even one matching level —
        // in wall-clock or in tracked bytes — skip building the level
        // arena too (an O(V + E) copy of the input): the truncated
        // hierarchy's coarsest level would be the input graph itself, so
        // the contiguous fallback below lands on the same partition
        // either way.
        let level0_bytes =
            ppn_graph::arena::LevelArena::level_bytes_estimate(g.num_nodes(), g.num_edges());
        let mem_blocked = !budget.admits_bytes(level0_bytes);
        if !budget.is_unlimited()
            && (budget.expired() || !budget.admits_work(g.num_edges() as u64) || mem_blocked)
        {
            let reason = if mem_blocked && !budget.cancelled() {
                "memory budget cannot fit the level arena; contiguous fallback on the input graph"
            } else {
                "deadline expired; contiguous fallback on the input graph"
            };
            degraded.get_or_insert_with(|| Degradation::new("coarsen", reason));
            let p = Partition::contiguous_balanced(g.node_weights(), k);
            let goodness = PartitionQuality::measure(g, &p).goodness_key(c.rmax, c.bmax);
            if best.as_ref().map(|(bg, _)| goodness < *bg).unwrap_or(true) {
                best = Some((goodness, p));
            }
            break 'cycles;
        }

        // hierarchy for this cycle ("go back to coarsening phase …
        // randomly, cyclically") — built in the flat level arena; the
        // Cow-based gp_coarsen survives as the property-test oracle
        fault_point("gp", "coarsen");
        let sp = trace::timed_span("gp", "coarsen", cycle as i64);
        // the reservation is declared before the hierarchy so it drops
        // after it: the ledger bytes stay claimed while the arena lives
        let mut reservation = budget.begin_reservation();
        let (hier, coarsen_cut_short) = gp_coarsen_flat_budgeted(
            g,
            &matchings,
            params.coarsen_to,
            cycle_seed,
            budget,
            &mut reservation,
        );
        phases.coarsen_s += sp.finish();
        if let Some(reason) = coarsen_cut_short {
            degraded.get_or_insert_with(|| Degradation::new("coarsen", reason));
        }
        let levels = hier.depth() - 1;
        let mid = levels / 2;
        let sizes = hier.size_trace();
        let level_winners = hier.winners.clone();

        // When the budget is already spent — a truncated hierarchy can
        // leave a coarsest level of any size — skip the greedy initial
        // search entirely: take the O(n) contiguous fallback on the
        // coarsest level and project it to the top without refinement.
        // This bounds the post-expiry tail to validation + O(n) work.
        let coarsest_view = hier.level(levels).csr_view();
        let coarsest_work =
            (coarsest_view.num_edges() as u64).saturating_mul(initial_restarts.max(1) as u64);
        if !budget.is_unlimited() && (budget.expired() || !budget.admits_work(coarsest_work)) {
            degraded.get_or_insert_with(|| {
                Degradation::new(
                    "initial",
                    "deadline expired; contiguous fallback on the coarsest level",
                )
            });
            let mut p = Partition::contiguous_balanced(coarsest_view.vwgt, k);
            for i in (0..levels).rev() {
                p = p.project(hier.map(i));
            }
            let goodness = PartitionQuality::measure(g, &p).goodness_key(c.rmax, c.bmax);
            let is_better = best.as_ref().map(|(bg, _)| goodness < *bg).unwrap_or(true);
            if is_better {
                best = Some((goodness, p));
            }
            break 'cycles;
        }

        // the coarsest graph is tiny (~coarsen_to nodes); materialise it
        // once per cycle for the initial partitioner
        let coarsest = hier.coarsest_graph();

        // generate intermediate clustering candidates
        fault_point("gp", "initial");
        let attempts = intermediate_attempts.max(1);
        let mut candidates: Vec<((u64, u64, u64), Partition)> = Vec::with_capacity(attempts);
        for attempt in 0..attempts {
            let _att = trace::span("gp", "attempt", attempt as i64);
            trace::counter("gp", "budget_checkpoint", 1);
            if attempt > 0 && budget.expired() {
                degraded.get_or_insert_with(|| {
                    Degradation::new(
                        "initial",
                        format!("deadline expired after {attempt} intermediate attempt(s)"),
                    )
                });
                break;
            }
            let attempt_seed = derive_seed(cycle_seed, attempt as u64);
            let sp = trace::timed_span("gp", "initial", attempt as i64);
            let p0 = greedy_initial_partition(
                &coarsest,
                k,
                c,
                &InitialOptions {
                    restarts: initial_restarts,
                    repair_passes: params.refine_passes,
                    seed: attempt_seed,
                    parallel: params.parallel,
                },
            );
            phases.initial_s += sp.finish();
            // refine from the coarsest up to the intermediate level
            let sp = trace::timed_span("gp", "refine", attempt as i64);
            let p_mid = refine_up(
                &hier,
                mid..levels,
                p0,
                c,
                params,
                attempt_seed,
                budget,
                &mut degraded,
            );
            phases.refine_s += sp.finish();
            // level `mid` exists for every mid <= levels (level `levels`
            // is the coarsest); measure it straight off the arena slice
            let goodness = PartitionQuality::measure_csr(hier.level(mid).csr_view(), &p_mid)
                .goodness_key(c.rmax, c.bmax);
            trace.push(CycleTrace {
                cycle,
                attempt,
                hierarchy_sizes: sizes.clone(),
                matchings: level_winners.clone(),
                mid_level: mid,
                goodness_at_mid: goodness,
                selected: false,
            });
            candidates.push((goodness, p_mid));
        }

        // a-posteriori selection of the best intermediate clustering
        // (attempt 0 always runs, so `candidates` is never empty)
        let winner_idx = candidates
            .iter()
            .enumerate()
            .min_by_key(|(i, (good, _))| (*good, *i))
            .map(|(i, _)| i)
            .expect("at least one attempt");
        let trace_base = trace.len() - candidates.len();
        trace[trace_base + winner_idx].selected = true;
        let (_, p_mid) = candidates.swap_remove(winner_idx);

        // continue the winner to the top
        fault_point("gp", "refine");
        let sp = trace::timed_span("gp", "refine", -1);
        let p_top = refine_up(
            &hier,
            0..mid,
            p_mid,
            c,
            params,
            derive_seed(cycle_seed, 0x70),
            budget,
            &mut degraded,
        );
        phases.refine_s += sp.finish();
        let quality = PartitionQuality::measure(g, &p_top);
        let goodness = quality.goodness_key(c.rmax, c.bmax);

        let is_better = match &best {
            None => true,
            Some((bg, _)) => goodness < *bg,
        };
        if is_better {
            best = Some((goodness, p_top));
        }
        // feasible ⇒ violations are zero ⇒ goodness.0 == 0
        if best.as_ref().map(|(g, _)| g.0 == 0).unwrap_or(false) {
            break 'cycles;
        }
    }

    if let Some(d) = &degraded {
        trace::instant_label("gp", "degraded", 0, &format!("{}: {}", d.phase, d.reason));
    }
    let (_, partition) = best.expect("at least one cycle ran");
    let quality = PartitionQuality::measure(g, &partition);
    let report = c.check_quality(&quality);
    let feasible = report.is_feasible();
    let result = GpResult {
        partition,
        quality,
        report,
        feasible,
        cycles_used,
        trace,
        phases,
        degraded,
    };
    if feasible {
        Ok(result)
    } else {
        Err(Box::new(GpInfeasible { best: result }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::metrics::edge_cut;

    /// Four triads with light bridges — feasible for sensible constraints.
    fn four_triads() -> WeightedGraph {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..12)
            .map(|i| g.add_node(30 + (i as u64 % 4) * 5))
            .collect();
        for c in 0..4 {
            let b = c * 3;
            g.add_edge(n[b], n[b + 1], 8).unwrap();
            g.add_edge(n[b + 1], n[b + 2], 8).unwrap();
            g.add_edge(n[b], n[b + 2], 8).unwrap();
        }
        for c in 0..4 {
            g.add_edge(n[c * 3], n[((c + 1) % 4) * 3 + 1], 2).unwrap();
        }
        g
    }

    #[test]
    fn feasible_instance_is_solved() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let r = gp_partition(&g, 4, &c, &GpParams::default()).expect("feasible");
        assert!(r.feasible);
        assert!(r.partition.is_complete());
        assert!(c.is_feasible(&g, &r.partition));
        assert_eq!(r.quality.total_cut, edge_cut(&g, &r.partition));
    }

    #[test]
    fn impossible_instance_reports_infeasible() {
        let g = four_triads();
        // rmax below the heaviest node: provably impossible
        let c = Constraints::new(10, 1000);
        let err = gp_partition(&g, 4, &c, &GpParams::default()).unwrap_err();
        assert!(!err.best.feasible);
        assert!(err.to_string().contains("impossible"));
        assert!(err.best.partition.is_complete());
    }

    #[test]
    fn trace_records_attempts_and_selection() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let params = GpParams {
            coarsen_to: 6,
            intermediate_attempts: 3,
            ..GpParams::default()
        };
        let r = gp_partition(&g, 4, &c, &params).expect("feasible");
        assert!(!r.trace.is_empty());
        // each cycle has exactly one selected attempt
        for cyc in 0..r.cycles_used {
            let selected = r
                .trace
                .iter()
                .filter(|t| t.cycle == cyc && t.selected)
                .count();
            let total = r.trace.iter().filter(|t| t.cycle == cyc).count();
            if total > 0 {
                assert_eq!(selected, 1, "cycle {cyc} should select exactly one");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let a = gp_partition(&g, 4, &c, &GpParams::default()).unwrap();
        let b = gp_partition(&g, 4, &c, &GpParams::default()).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn phase_timings_are_recorded() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let r = gp_partition(&g, 4, &c, &GpParams::default()).unwrap();
        // every run coarsens, partitions and refines at least once
        assert!(r.phases.initial_s > 0.0, "{:?}", r.phases);
        assert!(r.phases.total_s() >= r.phases.initial_s);
    }

    #[test]
    fn early_exit_on_feasibility() {
        let g = four_triads();
        let c = Constraints::new(500, 500); // trivially feasible
        let r = gp_partition(&g, 2, &c, &GpParams::default()).unwrap();
        assert_eq!(r.cycles_used, 1, "should stop after the first cycle");
    }

    #[test]
    fn small_graph_without_coarsening_works() {
        let g = four_triads(); // 12 nodes < coarsen_to=100 → no levels
        let c = Constraints::new(150, 25);
        let r = gp_partition(&g, 4, &c, &GpParams::default()).unwrap();
        assert!(r.feasible);
        for t in &r.trace {
            assert_eq!(t.hierarchy_sizes.len(), 1);
        }
    }

    #[test]
    fn unlimited_budget_is_bit_identical() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let plain = gp_partition(&g, 4, &c, &GpParams::default()).expect("feasible");
        let budgeted = gp_partition_budgeted(&g, 4, &c, &GpParams::default(), &Budget::unlimited())
            .expect("feasible");
        assert_eq!(plain.partition, budgeted.partition);
        assert!(budgeted.degraded.is_none());
    }

    #[test]
    fn expired_deadline_degrades_but_returns_a_complete_partition() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let r = match gp_partition_budgeted(&g, 4, &c, &GpParams::default(), &budget) {
            Ok(r) => r,
            Err(e) => e.best,
        };
        assert!(r.partition.is_complete());
        assert_eq!(r.partition.k(), 4);
        let d = r.degraded.expect("a zero deadline must cut the run short");
        assert!(!d.phase.is_empty());
    }

    #[test]
    fn coarsen_level_cap_degrades_deterministically() {
        // 240 nodes coarsen through several levels; cap at one
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..240).map(|_| g.add_node(4)).collect();
        for i in 0..240 {
            g.add_edge(n[i], n[(i + 1) % 240], 3).unwrap();
        }
        let c = Constraints::new(500, 1_000);
        let budget = Budget::unlimited().with_max_coarsen_levels(1);
        let a = gp_partition_budgeted(&g, 4, &c, &GpParams::default(), &budget);
        let b = gp_partition_budgeted(&g, 4, &c, &GpParams::default(), &budget);
        let (a, b) = (a.unwrap_or_else(|e| e.best), b.unwrap_or_else(|e| e.best));
        assert_eq!(
            a.partition, b.partition,
            "structural caps stay deterministic"
        );
        let d = a.degraded.expect("level cap must be reported");
        assert_eq!(d.phase, "coarsen");
    }

    #[test]
    fn memory_cap_degrades_but_stays_valid() {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..240).map(|_| g.add_node(4)).collect();
        for i in 0..240 {
            g.add_edge(n[i], n[(i + 1) % 240], 3).unwrap();
        }
        let c = Constraints::new(500, 1_000);

        // a ledger too small for even the finest level: contiguous
        // fallback on the input graph, reported as a memory degradation
        let budget = Budget::unlimited().with_max_bytes(1024);
        let r = gp_partition_budgeted(&g, 4, &c, &GpParams::default(), &budget)
            .unwrap_or_else(|e| e.best);
        assert!(r.partition.is_complete());
        assert_eq!(r.partition.k(), 4);
        let d = r.degraded.expect("a 1KiB cap must cut the run short");
        assert_eq!(d.phase, "coarsen");
        assert!(d.reason.contains("memory"), "reason: {}", d.reason);
        assert_eq!(
            budget.memory_ledger().unwrap().used(),
            0,
            "reservations must drain when the run ends"
        );

        // a ledger that fits level 0 but not a second level: coarsening
        // is cut short, the answer is still complete and deterministic
        let est0 = ppn_graph::arena::LevelArena::level_bytes_estimate(g.num_nodes(), g.num_edges());
        let make_budget = || Budget::unlimited().with_max_bytes(est0 + est0 / 2);
        let a = gp_partition_budgeted(&g, 4, &c, &GpParams::default(), &make_budget())
            .unwrap_or_else(|e| e.best);
        let b = gp_partition_budgeted(&g, 4, &c, &GpParams::default(), &make_budget())
            .unwrap_or_else(|e| e.best);
        assert!(a.partition.is_complete());
        assert_eq!(a.partition, b.partition, "memory caps stay deterministic");
        let d = a.degraded.expect("capped ledger must degrade");
        assert_eq!(d.phase, "coarsen");
        assert!(d.reason.contains("memory"), "reason: {}", d.reason);
    }

    #[test]
    fn reduced_footprint_still_solves() {
        let g = four_triads();
        let c = Constraints::new(150, 20);
        let budget = Budget::unlimited().with_reduced_footprint();
        let r = gp_partition_budgeted(&g, 4, &c, &GpParams::default(), &budget).expect("feasible");
        assert!(r.feasible);
        assert!(r.partition.is_complete());
    }

    #[test]
    fn large_graph_exercises_hierarchy() {
        // 4 communities of 60 nodes each
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..240).map(|_| g.add_node(4)).collect();
        for comm in 0..4 {
            let b = comm * 60;
            for i in 0..60 {
                g.add_edge(n[b + i], n[b + (i + 1) % 60], 10).unwrap();
                g.add_edge(n[b + i], n[b + (i + 7) % 60], 6).unwrap();
            }
        }
        for comm in 0..4 {
            g.add_edge(n[comm * 60], n[((comm + 1) % 4) * 60 + 3], 2)
                .unwrap();
        }
        let c = Constraints::new(260, 40);
        let r = gp_partition(&g, 4, &c, &GpParams::default()).expect("feasible");
        assert!(r.feasible);
        assert!(
            r.trace[0].hierarchy_sizes.len() > 1,
            "240 nodes must trigger coarsening: {:?}",
            r.trace[0].hierarchy_sizes
        );
    }
}

//! Constrained FM-style k-way refinement (paper §IV-B/C).
//!
//! The refinement run during un-coarsening differs from METIS-style
//! boundary refinement in its move admissibility and objective: the
//! primary objective is *constraint satisfaction* — per-pair bandwidth
//! `Bmax` and per-part resources `Rmax` — and only secondarily the total
//! cut. A move is taken when it lexicographically improves
//! `(violation magnitude, total cut)`; moves that would create or worsen
//! a violation are inadmissible.
//!
//! ## Hot-path structure
//!
//! The sweep is *boundary-driven* in the style of modern multilevel
//! partitioners (kKaHyPar): instead of visiting every node every pass,
//! each pass visits only the current boundary nodes (maintained
//! incrementally by [`ppn_graph::Boundary`]) plus the nodes of parts
//! that violate `Rmax` — the only nodes that can have a strictly
//! improving move. Inner loops run off a [`Csr`] snapshot; all
//! bookkeeping is incremental:
//!
//! * [`ConstrainedState`] keeps the K×K traffic matrix, part weights,
//!   the total cut, and (when built with
//!   [`new_tracked`](ConstrainedState::new_tracked)) the violation
//!   magnitude up to date in O(degree) per applied move — no O(k²)
//!   rescans anywhere on the move path;
//! * move evaluation reads the mover's dense part-connectivity row and
//!   costs O(k), not O(degree);
//! * the pairwise-exchange repair pass evaluates a swap exactly as the
//!   composition of two single-move deltas on reusable k-length scratch
//!   buffers — no state clones, no allocation.
//!
//! The original full-sweep implementation is preserved verbatim in
//! [`crate::refine_reference`] as the perf baseline; both satisfy the
//! same invariants (violations never increase; the cut never increases
//! while feasible) and the same fixed points, validated by the property
//! suite.
//!
//! ## CSR-native entry and the parallel sweep
//!
//! The engine borrows a [`CsrView`] rather than owning a [`Csr`], so
//! the flat level arena's per-level slices refine in place with zero
//! copies ([`constrained_refine_csr`]); [`constrained_refine`] stays as
//! the graph-input wrapper, snapshotting a `Csr` exactly as before —
//! all outputs are bit-identical.
//!
//! [`constrained_refine_parallel_csr`] is the million-node variant: each
//! pass first *frozen-evaluates* every active node against the current
//! (immutable) state in parallel — pure reads, order-independent, so
//! the candidate set is identical at any `RAYON_NUM_THREADS` — and then
//! commits serially in the pass's visit order, re-validating each
//! candidate against the live state before applying. The commit step
//! makes every applied move exactly a serial-engine move, so the
//! invariants (violations never increase; the cut never increases while
//! feasible) carry over unchanged, and a state where the frozen sweep
//! finds no candidate is precisely a state where the serial sweep would
//! apply no move: the two engines share fixed points, which the
//! `parallel_properties` suite checks at 1, 2 and 8 threads.

use ppn_graph::metrics::{part_weights_csr, CutMatrix};
use ppn_graph::prng::{derive_seed, XorShift128Plus};
use ppn_graph::trace;
use ppn_graph::{Boundary, Constraints, Csr, CsrView, NodeId, Partition, WeightedGraph};

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Incrementally-maintained constraint bookkeeping for a partition.
#[derive(Clone, Debug)]
pub struct ConstrainedState {
    /// Pairwise inter-part traffic.
    pub cut: CutMatrix,
    /// Per-part resource usage.
    pub part_weights: Vec<u64>,
    /// Per-part node counts.
    pub part_sizes: Vec<usize>,
    /// Current total cut.
    pub total_cut: u64,
    /// `Rmax` the resource excess is tracked against (`u64::MAX` when
    /// untracked; the excess is then trivially zero).
    tracked_rmax: u64,
    /// Incrementally-maintained `Σ (part_weight - rmax).max(0)`.
    res_excess: u64,
}

/// Effect of a candidate move, measured lexicographically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveDelta {
    /// Change in total violation magnitude (bandwidth + resource).
    pub dviol: i64,
    /// Change in total cut.
    pub dcut: i64,
}

impl MoveDelta {
    /// Strictly improving under the lexicographic objective.
    pub fn improves(&self) -> bool {
        self.dviol < 0 || (self.dviol == 0 && self.dcut < 0)
    }
}

/// Evaluate a move described by the mover's dense part-connectivity row
/// (`row[q]` = summed edge weight from the mover into part `q`) and the
/// row's non-zero bitmask, against the current traffic matrix and part
/// weights. O(popcount(mask)) ≤ O(degree); allocation-free. For
/// `k > 64` the mask is ignored and the row is scanned densely.
#[allow(clippy::too_many_arguments)]
fn eval_from_row(
    cut: &CutMatrix,
    part_weights: &[u64],
    c: &Constraints,
    row: &[u64],
    mask: u64,
    from: usize,
    to: usize,
    wv: u64,
) -> MoveDelta {
    if from == to {
        return MoveDelta { dviol: 0, dcut: 0 };
    }
    let k = cut.k();
    let bmax = c.bmax;
    let eb = |x: u64| x.saturating_sub(bmax) as i64;
    let mut dviol = 0i64;
    let mut pair = |q: usize| {
        let w = row[q];
        if w == 0 {
            return;
        }
        let cf = cut.get(from, q);
        let ct = cut.get(to, q);
        dviol += eb(cf - w) - eb(cf) + eb(ct.saturating_add(w)) - eb(ct);
    };
    if k <= 64 {
        let mut m = mask & !(1u64 << from) & !(1u64 << to);
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            m &= m - 1;
            pair(q);
        }
    } else {
        for q in (0..k).filter(|&q| q != from && q != to) {
            pair(q);
        }
    }
    // the (from, to) pair gains the mover's old internal edges and loses
    // its edges into the target part
    let cft = cut.get(from, to);
    let new_ft = (cft + row[from]) - row[to];
    dviol += eb(new_ft) - eb(cft);
    let dcut = row[from] as i64 - row[to] as i64;

    // resource violation delta on the two parts
    let rmax = c.rmax;
    let er = |x: u64| x.saturating_sub(rmax) as i64;
    let (wf, wt) = (part_weights[from], part_weights[to]);
    dviol += er(wt.saturating_add(wv)) - er(wt) - (er(wf) - er(wf - wv));

    MoveDelta { dviol, dcut }
}

impl ConstrainedState {
    /// Build the state for a complete partition. Violation queries fall
    /// back to a scan; prefer [`new_tracked`](ConstrainedState::new_tracked)
    /// on hot paths.
    pub fn new(g: &WeightedGraph, p: &Partition) -> Self {
        let cut = CutMatrix::compute(g, p);
        let total_cut = cut.total_cut();
        ConstrainedState {
            cut,
            part_weights: p.part_weights(g),
            part_sizes: p.part_sizes(),
            total_cut,
            tracked_rmax: u64::MAX,
            res_excess: 0,
        }
    }

    /// Build the state with violation magnitude tracked against `c`:
    /// [`violation`](ConstrainedState::violation) becomes O(1) and is
    /// maintained incrementally across [`apply_move`](ConstrainedState::apply_move).
    pub fn new_tracked(g: &WeightedGraph, p: &Partition, c: &Constraints) -> Self {
        Self::new(g, p).with_tracking(c)
    }

    /// [`new`](ConstrainedState::new) off a CSR view (the flat level
    /// arena's per-level form). Bit-identical to the graph constructor:
    /// the traffic matrix and part weights are order-independent `u64`
    /// sums.
    pub fn new_csr(csr: CsrView<'_>, p: &Partition) -> Self {
        let cut = CutMatrix::compute_csr(csr, p);
        let total_cut = cut.total_cut();
        ConstrainedState {
            cut,
            part_weights: part_weights_csr(csr, p),
            part_sizes: p.part_sizes(),
            total_cut,
            tracked_rmax: u64::MAX,
            res_excess: 0,
        }
    }

    /// [`new_tracked`](ConstrainedState::new_tracked) off a CSR view.
    pub fn new_tracked_csr(csr: CsrView<'_>, p: &Partition, c: &Constraints) -> Self {
        Self::new_csr(csr, p).with_tracking(c)
    }

    fn with_tracking(mut self, c: &Constraints) -> Self {
        self.cut.track_bmax(c.bmax);
        self.tracked_rmax = c.rmax;
        self.res_excess = self
            .part_weights
            .iter()
            .map(|&w| w.saturating_sub(c.rmax))
            .sum();
        self
    }

    /// Current violation magnitude against `c`. O(1) when the state was
    /// built with [`new_tracked`](ConstrainedState::new_tracked) for the
    /// same constraints, a scan otherwise.
    pub fn violation(&self, c: &Constraints) -> u64 {
        if c.bmax == self.cut.tracked_bmax() && c.rmax == self.tracked_rmax {
            return self.cut.tracked_excess() + self.res_excess;
        }
        c.violation_magnitude(&self.cut, &self.part_weights)
    }

    /// True when all constraints hold.
    pub fn feasible(&self, c: &Constraints) -> bool {
        self.violation(c) == 0
    }

    /// Evaluate moving `v` from its current part to `to` without
    /// mutating anything. `scratch` is a dense `k`-length buffer of
    /// per-part connectivity weights; it is resized and zeroed
    /// internally, so any reusable `Vec` will do. Cost: O(degree + k).
    ///
    /// Hot paths that already maintain a [`Boundary`] should evaluate
    /// off its connectivity rows instead, which drops the O(degree)
    /// row-building step.
    pub fn evaluate_move(
        &self,
        g: &WeightedGraph,
        p: &Partition,
        c: &Constraints,
        v: NodeId,
        to: u32,
        scratch: &mut Vec<u64>,
    ) -> MoveDelta {
        let from = p.part_of(v);
        debug_assert_ne!(from, Partition::UNASSIGNED);
        if from == to {
            return MoveDelta { dviol: 0, dcut: 0 };
        }
        let k = self.cut.k();
        scratch.clear();
        scratch.resize(k, 0);
        let mut mask = 0u64;
        for &(u, e) in g.neighbors(v) {
            let q = p.part_of(u);
            if q == Partition::UNASSIGNED {
                continue;
            }
            scratch[q as usize] += g.edge_weight(e);
            if k <= 64 {
                mask |= 1u64 << q;
            }
        }
        eval_from_row(
            &self.cut,
            &self.part_weights,
            c,
            scratch,
            mask,
            from as usize,
            to as usize,
            g.node_weight(v),
        )
    }

    /// Apply the move `v → to`, updating partition and bookkeeping. Cost
    /// O(degree): the total cut is advanced by the move's cut delta and
    /// the tracked violation magnitude by its violation delta — no
    /// matrix rescans.
    pub fn apply_move(&mut self, g: &WeightedGraph, p: &mut Partition, v: NodeId, to: u32) {
        let from = p.part_of(v);
        if from == to {
            return;
        }
        let dcut = self.cut.apply_move(g, p, v, from, to);
        self.apply_bookkeeping(from as usize, to as usize, g.node_weight(v), dcut);
        p.assign(v, to);
    }

    /// Shared non-matrix bookkeeping of a move: total cut, part weights
    /// and sizes, tracked resource excess.
    fn apply_bookkeeping(&mut self, from: usize, to: usize, wv: u64, dcut: i64) {
        self.total_cut = (self.total_cut as i64 + dcut) as u64;
        let r = self.tracked_rmax;
        let (wf, wt) = (self.part_weights[from], self.part_weights[to]);
        self.res_excess -= wf.saturating_sub(r) - (wf - wv).saturating_sub(r);
        self.res_excess += (wt + wv).saturating_sub(r) - wt.saturating_sub(r);
        self.part_weights[from] -= wv;
        self.part_weights[to] += wv;
        self.part_sizes[from] -= 1;
        self.part_sizes[to] += 1;
    }
}

/// Migration-aware objective for warm-started (incremental)
/// refinement: alongside the cut, moves are charged for walking nodes
/// *away from* a reference assignment (the previous deployment) and
/// credited for walking them back.
///
/// The combined gain of a move is the integer form of the paper-style
/// blend `λ·Δcut + (1−λ)·Δmigration`:
///
/// ```text
/// score = lambda_permille · Δcut + (1000 − lambda_permille) · Δmigration
/// ```
///
/// where `Δmigration` is the mover's node weight when the move leaves
/// its reference part, its negation when the move returns to it, and 0
/// otherwise (nodes with an [`Partition::UNASSIGNED`] reference — e.g.
/// freshly inserted processes — migrate for free). Constraint
/// violations stay lexicographically dominant: a violation-reducing
/// move is taken regardless of its migration bill, so the hard
/// `Rmax`/`Bmax` contracts of [`constrained_refine`] carry over
/// unchanged. `lambda_permille = 1000` recovers the pure-cut objective
/// over a different tie-break scale; `0` pins every node to its
/// reference part unless constraints force it out.
#[derive(Clone, Copy, Debug)]
pub struct MigrationOptions<'a> {
    /// Reference part per node ([`Partition::UNASSIGNED`] = free
    /// mover). Must cover every node of the refined graph.
    pub reference: &'a [u32],
    /// Weight (in per-mille) on `Δcut`; the remainder to 1000 weighs
    /// `Δmigration`. Values above 1000 are clamped.
    pub lambda_permille: u32,
}

/// Total node weight currently placed off its (non-`UNASSIGNED`)
/// reference part — the "migration mass" a cut-vs-migration report
/// divides by the total weight.
pub fn migration_mass(reference: &[u32], assignment: &[u32], vwgt: &[u64]) -> u64 {
    reference
        .iter()
        .zip(assignment)
        .zip(vwgt)
        .filter(|((&r, &a), _)| r != Partition::UNASSIGNED && r != a)
        .map(|(_, &w)| w)
        .sum()
}

/// Options for [`constrained_refine`].
#[derive(Clone, Debug)]
pub struct RefineOptions {
    /// Maximum sweeps.
    pub max_passes: usize,
    /// Visit-order seed.
    pub seed: u64,
    /// Never empty a part.
    pub protect_nonempty: bool,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            max_passes: 8,
            seed: 1,
            protect_nonempty: true,
        }
    }
}

/// The boundary-driven refinement engine: a borrowed CSR view,
/// incremental constraint state, boundary set, and reusable scratch
/// buffers. All per-move work is allocation-free. Borrowing (rather
/// than owning) the CSR is what lets the flat level arena's per-level
/// slices refine without a copy.
struct RefineEngine<'a> {
    csr: CsrView<'a>,
    state: ConstrainedState,
    boundary: Boundary,
    /// k-length copy of the mover's connectivity row (the row mutates
    /// while the move is applied).
    row: Vec<u64>,
    /// Edge weight from the current swap pivot to every node (sparse
    /// fill/clear over its neighbourhood).
    uvw: Vec<u64>,
    /// Warm-start migration objective; `None` on the classic cut-only
    /// paths (which stay bit-identical).
    mig: Option<MigCtx<'a>>,
}

/// Resolved migration objective: the reference assignment plus the two
/// integer blend weights.
#[derive(Clone, Copy)]
struct MigCtx<'a> {
    reference: &'a [u32],
    /// Per-mille weight on `Δcut`.
    lam: i64,
    /// Per-mille weight on `Δmigration` (`1000 - lam`).
    mu: i64,
}

impl<'a> MigCtx<'a> {
    /// Migration-weight delta of moving a node of weight `wv` with
    /// reference part `r` from `from` to `to`.
    fn delta(&self, r: u32, from: u32, to: u32, wv: u64) -> i64 {
        if r == Partition::UNASSIGNED || from == to {
            0
        } else if from == r {
            wv as i64
        } else if to == r {
            -(wv as i64)
        } else {
            0
        }
    }
}

impl<'a> RefineEngine<'a> {
    fn new(csr: CsrView<'a>, p: &Partition, c: &Constraints) -> Self {
        let state = ConstrainedState::new_tracked_csr(csr, p, c);
        let boundary = Boundary::new(csr, p);
        let k = p.k();
        let n = csr.num_nodes();
        RefineEngine {
            csr,
            state,
            boundary,
            row: vec![0; k],
            uvw: vec![0; n],
            mig: None,
        }
    }

    /// Apply `v → to` across every incremental structure. O(degree + k).
    fn apply(&mut self, p: &mut Partition, v: NodeId, to: u32) {
        let from = p.part_of(v);
        if from == to {
            return;
        }
        self.row.copy_from_slice(self.boundary.conn(v));
        let dcut = self.state.cut.apply_conn_row_move(&self.row, from, to);
        self.state
            .apply_bookkeeping(from as usize, to as usize, self.csr.vwgt[v.index()], dcut);
        self.boundary.apply_move(self.csr, p, v, from, to);
        p.assign(v, to);
    }

    /// Nodes worth visiting this pass: the boundary, plus every node of
    /// an `Rmax`-violating part (interior nodes of feasible parts cannot
    /// have a strictly improving move).
    fn collect_active(&self, p: &Partition, c: &Constraints, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.boundary.nodes());
        if self.state.part_weights.iter().any(|&w| w > c.rmax) {
            for v in p
                .assignment()
                .iter()
                .enumerate()
                .filter(|&(_, &q)| self.state.part_weights[q as usize] > c.rmax)
                .map(|(i, _)| NodeId::from_index(i))
            {
                if !self.boundary.is_boundary(v) {
                    out.push(v);
                }
            }
        }
    }

    /// The best strictly-improving move of `v` against the *current*
    /// state, or `None`. Read-only — this is the half of
    /// [`try_best_move`](RefineEngine::try_best_move) the parallel
    /// frozen-evaluation sweep runs concurrently across nodes.
    fn best_move_for(
        &self,
        p: &Partition,
        c: &Constraints,
        v: NodeId,
        protect_nonempty: bool,
    ) -> Option<(MoveDelta, u32)> {
        let k = self.state.cut.k();
        let from = p.part_of(v) as usize;
        if protect_nonempty && self.state.part_sizes[from] == 1 {
            return None;
        }
        // candidate targets: parts in the neighbourhood (cut can only
        // improve toward those), plus — when the source part violates
        // Rmax — the lightest part (pure resource escape).
        let escape = if self.state.part_weights[from] > c.rmax {
            (0..k as u32)
                .filter(|&t| t as usize != from)
                .min_by_key(|&t| self.state.part_weights[t as usize])
        } else {
            None
        };
        let row = self.boundary.conn(v);
        let mask = self.boundary.conn_mask(v);
        let wv = self.csr.vwgt[v.index()];
        let mig = self.mig;
        let rv = mig.map(|m| m.reference[v.index()]);
        let mut best: Option<(MoveDelta, u32)> = None;
        let mut consider = |t: u32, row: &[u64]| {
            let d = eval_from_row(
                &self.state.cut,
                &self.state.part_weights,
                c,
                row,
                mask,
                from,
                t as usize,
                wv,
            );
            match mig {
                // classic cut-only objective — unchanged
                None => {
                    if !d.improves() {
                        return;
                    }
                    let better = match &best {
                        None => true,
                        Some((bd, bt)) => (d.dviol, d.dcut, t) < (bd.dviol, bd.dcut, *bt),
                    };
                    if better {
                        best = Some((d, t));
                    }
                }
                // warm-start blend: violations still dominate; among
                // equal-violation moves the blended λ·Δcut + μ·Δmig
                // score replaces the raw cut delta
                Some(m) => {
                    let r = rv.unwrap();
                    let score = m.lam.saturating_mul(d.dcut)
                        + m.mu.saturating_mul(m.delta(r, from as u32, t, wv));
                    if !(d.dviol < 0 || (d.dviol == 0 && score < 0)) {
                        return;
                    }
                    let better = match &best {
                        None => true,
                        Some((bd, bt)) => {
                            let bscore = m.lam.saturating_mul(bd.dcut)
                                + m.mu.saturating_mul(m.delta(r, from as u32, *bt, wv));
                            (d.dviol, score, t) < (bd.dviol, bscore, *bt)
                        }
                    };
                    if better {
                        best = Some((d, t));
                    }
                }
            }
        };
        if k <= 64 {
            let mut m = mask & !(1u64 << from);
            if let Some(e) = escape {
                m |= 1u64 << e;
            }
            while m != 0 {
                let t = m.trailing_zeros();
                m &= m - 1;
                consider(t, row);
            }
        } else {
            for t in 0..k as u32 {
                if t as usize == from || (row[t as usize] == 0 && escape != Some(t)) {
                    continue;
                }
                consider(t, row);
            }
        }
        best
    }

    /// Find and apply the best strictly-improving move of `v`, if any.
    fn try_best_move(
        &mut self,
        p: &mut Partition,
        c: &Constraints,
        v: NodeId,
        protect_nonempty: bool,
    ) -> bool {
        if let Some((d, t)) = self.best_move_for(p, c, v, protect_nonempty) {
            trace::hist("refine", "gain_dcut", d.dcut);
            trace::hist("refine", "gain_dviol", d.dviol);
            if let Some(m) = self.mig {
                let dm = m.delta(
                    m.reference[v.index()],
                    p.part_of(v),
                    t,
                    self.csr.vwgt[v.index()],
                );
                if dm > 0 {
                    trace::counter("migration", "mass_out", dm as u64);
                } else if dm < 0 {
                    trace::counter("migration", "mass_back", (-dm) as u64);
                }
            }
            self.apply(p, v, t);
            true
        } else {
            false
        }
    }

    /// Frozen-evaluation sweep: mark which active nodes have a strictly
    /// improving move against the current (immutable) state. Pure reads,
    /// evaluated in parallel when the `parallel` feature is on; each
    /// node's verdict depends only on the frozen state, so the output is
    /// identical at any thread count (and to a sequential scan).
    fn frozen_candidates(
        &self,
        p: &Partition,
        c: &Constraints,
        active: &[NodeId],
        protect_nonempty: bool,
    ) -> Vec<bool> {
        #[cfg(feature = "parallel")]
        {
            active
                .iter()
                .copied()
                .into_par_iter()
                .map(|v| self.best_move_for(p, c, v, protect_nonempty).is_some())
                .collect()
        }
        #[cfg(not(feature = "parallel"))]
        {
            active
                .iter()
                .map(|&v| self.best_move_for(p, c, v, protect_nonempty).is_some())
                .collect()
        }
    }

    /// Exact `(Δviolation, Δcut)` of the pairwise exchange
    /// `u: over → b`, then `v: b → over`, composed from the two
    /// single-move deltas. Only parts either node connects to can see a
    /// pair delta, and the delta on `(b, q)` is the exact negation of
    /// the delta on `(over, q)`, so the whole evaluation is
    /// O(popcount(mask_u | mask_v)) with no scratch. Requires `uvw` to
    /// hold `u`'s neighbour weights.
    fn eval_swap(
        &self,
        c: &Constraints,
        u: NodeId,
        over: usize,
        v: NodeId,
        b: usize,
    ) -> (i64, i64) {
        let k = self.state.cut.k();
        let ru = self.boundary.conn(u);
        let rv = self.boundary.conn(v);
        let w_uv = self.uvw[v.index()] as i64;
        // the (over, b) pair sees both moves plus the u-v edge twice
        let d_ob = (ru[over] as i64 - ru[b] as i64) + (rv[b] as i64 - rv[over] as i64) + 2 * w_uv;
        let dcut = d_ob; // third-part deltas cancel pairwise

        let bmax = c.bmax;
        let exc = |cur: u64, d: i64| -> i64 {
            let newv = (cur as i64 + d) as u64;
            newv.saturating_sub(bmax) as i64 - cur.saturating_sub(bmax) as i64
        };
        let cut = &self.state.cut;
        let mut dviol = 0i64;
        let mut third_party = |q: usize| {
            // pair (over, q) changes by rv[q] - ru[q]; pair (b, q) by
            // the exact opposite
            let d = rv[q] as i64 - ru[q] as i64;
            if d != 0 {
                dviol += exc(cut.get(over, q), d) + exc(cut.get(b, q), -d);
            }
        };
        if k <= 64 {
            let mut m = (self.boundary.conn_mask(u) | self.boundary.conn_mask(v))
                & !(1u64 << over)
                & !(1u64 << b);
            while m != 0 {
                let q = m.trailing_zeros() as usize;
                m &= m - 1;
                third_party(q);
            }
        } else {
            for q in (0..k).filter(|&q| q != over && q != b) {
                third_party(q);
            }
        }
        if d_ob != 0 {
            dviol += exc(cut.get(over, b), d_ob);
        }

        let rmax = c.rmax;
        let er = |x: u64| x.saturating_sub(rmax) as i64;
        let (wu, wv_w) = (self.csr.vwgt[u.index()], self.csr.vwgt[v.index()]);
        let (wa, wb) = (self.state.part_weights[over], self.state.part_weights[b]);
        dviol += er(wa - wu + wv_w) - er(wa) + er(wb + wu - wv_w) - er(wb);

        (dviol, dcut)
    }

    /// One round of violation-reducing pairwise exchanges between a
    /// resource-violating part and every other part. A swap is accepted
    /// only if it strictly reduces `(violation, cut)` lexicographically.
    /// Returns the number of swaps applied.
    fn swap_pass(&mut self, p: &mut Partition, c: &Constraints) -> usize {
        let k = p.k();
        let n = self.csr.num_nodes();
        let mut swaps = 0;
        while self.state.violation(c) > 0 {
            let Some(over) = (0..k).find(|&a| self.state.part_weights[a] > c.rmax) else {
                break;
            };
            // best = (dviol, dcut, u, v): total order, so scan order is
            // irrelevant to the winner
            let mut best: Option<(i64, i64, NodeId, NodeId)> = None;
            for u in 0..n {
                let u = NodeId::from_index(u);
                if p.part_of(u) as usize != over {
                    continue;
                }
                let wu = self.csr.vwgt[u.index()];
                for i in self.csr.xadj[u.index()]..self.csr.xadj[u.index() + 1] {
                    self.uvw[self.csr.adjncy[i] as usize] = self.csr.adjwgt[i];
                }
                for v in 0..n {
                    let v = NodeId::from_index(v);
                    let b = p.part_of(v) as usize;
                    if b == over {
                        continue;
                    }
                    let wv = self.csr.vwgt[v.index()];
                    if wv >= wu {
                        continue; // swap must lighten the violating part
                    }
                    // cheap resource prefilter before the exact check
                    let wa = self.state.part_weights[over];
                    let wb = self.state.part_weights[b];
                    let res_before =
                        (wa as i64 - c.rmax as i64).max(0) + (wb as i64 - c.rmax as i64).max(0);
                    let res_after = ((wa - wu + wv) as i64 - c.rmax as i64).max(0)
                        + ((wb - wv + wu) as i64 - c.rmax as i64).max(0);
                    if res_after >= res_before {
                        continue;
                    }
                    let (dviol, dcut) = self.eval_swap(c, u, over, v, b);
                    if dviol < 0 || (dviol == 0 && dcut < 0) {
                        let key = (dviol, dcut, u, v);
                        if best.map(|bk| key < bk).unwrap_or(true) {
                            best = Some(key);
                        }
                    }
                }
                for i in self.csr.xadj[u.index()]..self.csr.xadj[u.index() + 1] {
                    self.uvw[self.csr.adjncy[i] as usize] = 0;
                }
            }
            let Some((_, _, u, v)) = best else { break };
            let b = p.part_of(v);
            self.apply(p, u, b);
            self.apply(p, v, over as u32);
            swaps += 1;
        }
        swaps
    }
}

/// Constrained refinement sweep: each pass visits the boundary nodes
/// and `Rmax`-violators in random order; each visited node moves to the
/// part with the best strictly-improving `(Δviolation, Δcut)`. Returns
/// the number of moves applied.
///
/// The cut never increases while violations are zero; violations never
/// increase, period. The fixed points coincide with the full-sweep
/// reference implementation ([`crate::refine_reference`]): a node with
/// no neighbour in another part and a feasible home part can never have
/// a strictly improving move, so skipping it loses nothing.
pub fn constrained_refine(
    g: &WeightedGraph,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
) -> usize {
    let csr = Csr::from_graph(g);
    constrained_refine_csr(&csr, p, c, opts)
}

/// [`constrained_refine`] off a borrowed CSR view — the entry the flat
/// level arena's per-level slices use, with no graph materialisation
/// and no CSR copy. Bit-identical to the graph entry on the same
/// topology (the wrapper above delegates here).
pub fn constrained_refine_csr<'a>(
    csr: impl Into<CsrView<'a>>,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
) -> usize {
    refine_entry(csr.into(), p, c, opts, false)
}

/// Parallel-sweep constrained refinement (see the module docs): each
/// pass frozen-evaluates the active set in parallel, then commits
/// serially in visit order, re-validating every candidate against the
/// live state. Deterministic and independent of `RAYON_NUM_THREADS`;
/// shares all invariants and fixed points with [`constrained_refine`],
/// but interior passes may take different (equally valid) move
/// sequences — callers gate it by graph size, where the frozen sweep's
/// O(active · k) evaluation dwarfs the serial commit.
pub fn constrained_refine_parallel(
    g: &WeightedGraph,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
) -> usize {
    let csr = Csr::from_graph(g);
    constrained_refine_parallel_csr(&csr, p, c, opts)
}

/// [`constrained_refine_parallel`] off a borrowed CSR view.
pub fn constrained_refine_parallel_csr<'a>(
    csr: impl Into<CsrView<'a>>,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
) -> usize {
    refine_entry(csr.into(), p, c, opts, true)
}

/// Warm-start refinement under the migration-aware objective of
/// [`MigrationOptions`]: identical sweep structure to
/// [`constrained_refine`], but among constraint-neutral moves the
/// blended `λ·Δcut + (1−λ)·Δmigration` score decides. Violations never
/// increase; with `lambda_permille = 1000` and no reference the sweep
/// degenerates to the classic objective.
pub fn constrained_refine_migration(
    g: &WeightedGraph,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
    mig: &MigrationOptions<'_>,
) -> usize {
    let csr = Csr::from_graph(g);
    constrained_refine_migration_csr(&csr, p, c, opts, mig)
}

/// [`constrained_refine_migration`] off a borrowed CSR view.
pub fn constrained_refine_migration_csr<'a>(
    csr: impl Into<CsrView<'a>>,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
    mig: &MigrationOptions<'_>,
) -> usize {
    refine_entry_with(csr.into(), p, c, opts, false, Some(mig))
}

fn refine_entry(
    csr: CsrView<'_>,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
    parallel: bool,
) -> usize {
    refine_entry_with(csr, p, c, opts, parallel, None)
}

fn refine_entry_with<'a>(
    csr: CsrView<'a>,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
    parallel: bool,
    mig: Option<&MigrationOptions<'a>>,
) -> usize {
    assert!(p.is_complete(), "refinement needs a complete partition");
    if csr.num_nodes() == 0 || p.k() <= 1 {
        return 0;
    }
    let mut engine = RefineEngine::new(csr, p, c);
    if let Some(m) = mig {
        assert_eq!(
            m.reference.len(),
            csr.num_nodes(),
            "migration reference must cover the graph"
        );
        let lam = m.lambda_permille.min(1000) as i64;
        engine.mig = Some(MigCtx {
            reference: m.reference,
            lam,
            mu: 1000 - lam,
        });
    }
    let mut rng = XorShift128Plus::new(derive_seed(opts.seed, 0xC0F1));
    let mut active: Vec<NodeId> = Vec::new();
    let mut total_moves = 0;

    for pass in 0..opts.max_passes {
        let _sp = trace::span("refine", "pass", pass as i64);
        engine.collect_active(p, c, &mut active);
        rng.shuffle(&mut active);
        trace::counter("refine", "boundary_nodes", active.len() as u64);
        trace::counter("refine", "moves_evaluated", active.len() as u64);
        let mut moves = 0;
        if parallel {
            // frozen-eval in parallel, commit serially in visit order;
            // the first commit re-validates against an unchanged state,
            // so a non-empty candidate set always yields >= 1 move
            let frozen = trace::span("refine", "frozen_eval", active.len() as i64);
            let candidates = engine.frozen_candidates(p, c, &active, opts.protect_nonempty);
            drop(frozen);
            for (&v, &is_candidate) in active.iter().zip(&candidates) {
                if is_candidate && engine.try_best_move(p, c, v, opts.protect_nonempty) {
                    moves += 1;
                }
            }
        } else {
            for &v in &active {
                if engine.try_best_move(p, c, v, opts.protect_nonempty) {
                    moves += 1;
                }
            }
        }
        total_moves += moves;
        trace::counter("refine", "moves_committed", moves as u64);
        trace::counter("refine", "moves_rejected", (active.len() - moves) as u64);
        if moves == 0 {
            // single moves exhausted: when resources are still violated,
            // try pairwise exchanges — tight packings (every part close
            // to Rmax) are unreachable by single moves because any move
            // overshoots the receiving part
            let swaps = engine.swap_pass(p, c);
            total_moves += swaps;
            trace::counter("refine", "swap_moves", swaps as u64);
            if swaps == 0 {
                break;
            }
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::metrics::edge_cut;

    /// Two heavy producer-consumer pairs plus a moderate cross stream:
    /// the min-cut bisection routes 30 units over one pair — infeasible
    /// for Bmax = 20; the fix splits the traffic differently.
    fn bw_tension() -> WeightedGraph {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(10)).collect();
        g.add_edge(n[0], n[1], 100).unwrap();
        g.add_edge(n[2], n[3], 100).unwrap();
        g.add_edge(n[1], n[2], 15).unwrap();
        g.add_edge(n[3], n[4], 15).unwrap();
        g.add_edge(n[4], n[5], 100).unwrap();
        g
    }

    #[test]
    fn state_matches_fresh_measurement_after_moves() {
        let g = bw_tension();
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let mut s = ConstrainedState::new(&g, &p);
        s.apply_move(&g, &mut p, NodeId(1), 1);
        s.apply_move(&g, &mut p, NodeId(4), 0);
        let fresh = ConstrainedState::new(&g, &p);
        assert_eq!(s.cut, fresh.cut);
        assert_eq!(s.part_weights, fresh.part_weights);
        assert_eq!(s.total_cut, fresh.total_cut);
    }

    #[test]
    fn tracked_state_matches_scan_after_moves() {
        let g = bw_tension();
        let c = Constraints::new(25, 20);
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let mut s = ConstrainedState::new_tracked(&g, &p, &c);
        for (v, to) in [(1u32, 1u32), (4, 0), (0, 2), (3, 0)] {
            s.apply_move(&g, &mut p, NodeId(v), to);
            let fresh = ConstrainedState::new(&g, &p);
            assert_eq!(s.total_cut, fresh.total_cut, "after {v}->{to}");
            assert_eq!(s.violation(&c), fresh.violation(&c), "after {v}->{to}");
        }
    }

    #[test]
    fn evaluate_matches_apply() {
        let g = bw_tension();
        let c = Constraints::new(25, 20);
        let mut scratch = Vec::new();
        for to in 0..3u32 {
            for vi in 0..6u32 {
                let mut p = Partition::from_assignment(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
                let s = ConstrainedState::new_tracked(&g, &p, &c);
                let viol_before = s.violation(&c) as i64;
                let cut_before = s.total_cut as i64;
                let d = s.evaluate_move(&g, &p, &c, NodeId(vi), to, &mut scratch);
                let mut s2 = s.clone();
                s2.apply_move(&g, &mut p, NodeId(vi), to);
                assert_eq!(
                    d.dviol,
                    s2.violation(&c) as i64 - viol_before,
                    "node {vi} → {to}: violation delta mismatch"
                );
                assert_eq!(
                    d.dcut,
                    s2.total_cut as i64 - cut_before,
                    "node {vi} → {to}: cut delta mismatch"
                );
            }
        }
    }

    #[test]
    fn evaluate_handles_unconstrained_limits() {
        // u64::MAX limits must mean "no violation", not a sign-flipped
        // threshold (a saturation bug in an earlier version)
        let g = bw_tension();
        let c = Constraints::unconstrained();
        let p = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let s = ConstrainedState::new_tracked(&g, &p, &c);
        let mut scratch = Vec::new();
        for vi in 0..6u32 {
            for to in 0..2u32 {
                let d = s.evaluate_move(&g, &p, &c, NodeId(vi), to, &mut scratch);
                assert_eq!(d.dviol, 0, "node {vi} → {to} under no constraints");
            }
        }
    }

    #[test]
    fn refinement_reduces_cut_without_violating() {
        let g = bw_tension();
        let c = Constraints::new(30, 200);
        // scrambled start
        let mut p = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let before = edge_cut(&g, &p);
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        let after = edge_cut(&g, &p);
        assert!(after <= before);
        assert!(
            c.is_feasible(&g, &p),
            "refinement must keep feasibility reachable"
        );
    }

    #[test]
    fn refinement_repairs_bandwidth_violation() {
        // a -20- b -5- c -20- d, with b on the wrong side: pair traffic
        // 20 > Bmax 10; moving b over drops it to 5.
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(10)).collect();
        g.add_edge(n[0], n[1], 20).unwrap();
        g.add_edge(n[1], n[2], 5).unwrap();
        g.add_edge(n[2], n[3], 20).unwrap();
        let c = Constraints::new(100, 10);
        let mut p = Partition::from_assignment(vec![0, 1, 1, 1], 2).unwrap();
        let s = ConstrainedState::new(&g, &p);
        assert_eq!(
            s.violation(&c),
            10,
            "start must violate for the test to bite"
        );
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        let s2 = ConstrainedState::new(&g, &p);
        assert_eq!(s2.violation(&c), 0, "single-move repair should succeed");
        assert!(c.is_feasible(&g, &p));
    }

    #[test]
    fn refinement_repairs_resource_violation() {
        // part 1 overweight; moving any one node over fixes it without
        // touching a heavy edge
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(10)).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1], 2).unwrap();
        }
        let c = Constraints::new(30, 100);
        let mut p = Partition::from_assignment(vec![0, 1, 1, 1, 1], 2).unwrap();
        assert!(ConstrainedState::new(&g, &p).violation(&c) > 0);
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        assert!(c.is_feasible(&g, &p), "resource repair should succeed");
    }

    #[test]
    fn overweight_interior_nodes_are_visited() {
        // part 0 holds two isolated heavy nodes (no boundary edges at
        // all): only the Rmax-violator sweep can move one out
        let mut g = WeightedGraph::new();
        let _a = g.add_node(40);
        let _b = g.add_node(40);
        let c0 = g.add_node(10);
        let d = g.add_node(10);
        g.add_edge(c0, d, 3).unwrap();
        let c = Constraints::new(50, 100);
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1], 2).unwrap();
        assert!(ConstrainedState::new(&g, &p).violation(&c) > 0);
        let moves = constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        assert!(moves > 0);
        assert!(c.is_feasible(&g, &p), "weights {:?}", p.part_weights(&g));
    }

    #[test]
    fn violations_never_increase() {
        let g = bw_tension();
        let c = Constraints::new(30, 18);
        for seed in 0..8 {
            let assign: Vec<u32> = (0..6).map(|i| ((i + seed) % 3) as u32).collect();
            let mut p = Partition::from_assignment(assign, 3).unwrap();
            let v_before = ConstrainedState::new(&g, &p).violation(&c);
            constrained_refine(
                &g,
                &mut p,
                &c,
                &RefineOptions {
                    seed: seed as u64,
                    ..Default::default()
                },
            );
            let v_after = ConstrainedState::new(&g, &p).violation(&c);
            assert!(v_after <= v_before, "seed {seed}: {v_before} -> {v_after}");
        }
    }

    #[test]
    fn protect_nonempty_holds() {
        let g = bw_tension();
        let c = Constraints::unconstrained();
        let mut p = Partition::from_assignment(vec![0, 1, 1, 1, 1, 1], 2).unwrap();
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        assert!(p.part_sizes().iter().all(|&s| s >= 1));
    }

    #[test]
    fn swap_pass_solves_tight_packing() {
        // two parts at 135 and 124 with Rmax 133: no single move helps
        // (every node weighs ≥ 30, so any move overshoots the receiving
        // part), but swapping 45 ↔ 40 lands at 130/129.
        let mut g = WeightedGraph::new();
        let a = g.add_node(60);
        let b = g.add_node(45);
        let c0 = g.add_node(30);
        let d = g.add_node(40);
        let e = g.add_node(49);
        let f = g.add_node(35);
        g.add_edge(a, b, 9).unwrap();
        g.add_edge(b, c0, 9).unwrap();
        g.add_edge(d, e, 9).unwrap();
        g.add_edge(e, f, 9).unwrap();
        g.add_edge(c0, d, 3).unwrap();
        let cons = Constraints::new(133, 1000);
        let mut p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        assert_eq!(ConstrainedState::new(&g, &p).violation(&cons), 2);
        let moves = constrained_refine(&g, &mut p, &cons, &RefineOptions::default());
        assert!(moves > 0, "the swap pass must engage");
        assert!(
            cons.is_feasible(&g, &p),
            "swap should repair the packing: weights {:?}",
            p.part_weights(&g)
        );
    }

    #[test]
    fn feasible_stays_feasible() {
        let g = bw_tension();
        let c = Constraints::new(30, 120);
        let mut p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        assert!(c.is_feasible(&g, &p));
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        assert!(c.is_feasible(&g, &p));
    }

    #[test]
    fn migration_lambda_1000_matches_classic_fixed_point_quality() {
        // with λ = 1000 the migration term is muted: the sweep must
        // reach a state of the same cut/feasibility as the classic one
        let g = bw_tension();
        let c = Constraints::new(30, 200);
        let mut classic = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        constrained_refine(&g, &mut classic, &c, &RefineOptions::default());
        let mut warm = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let reference = warm.assignment().to_vec();
        constrained_refine_migration(
            &g,
            &mut warm,
            &c,
            &RefineOptions::default(),
            &MigrationOptions {
                reference: &reference,
                lambda_permille: 1000,
            },
        );
        assert_eq!(edge_cut(&g, &warm), edge_cut(&g, &classic));
        assert!(c.is_feasible(&g, &warm));
    }

    #[test]
    fn migration_lambda_0_pins_a_feasible_reference() {
        // λ = 0: the start is feasible and equal to the reference, so
        // no move can improve (every departure costs migration)
        let g = bw_tension();
        let c = Constraints::new(30, 200);
        let reference = vec![0, 0, 0, 1, 1, 1];
        let mut p = Partition::from_assignment(reference.clone(), 2).unwrap();
        assert!(c.is_feasible(&g, &p));
        let moves = constrained_refine_migration(
            &g,
            &mut p,
            &c,
            &RefineOptions::default(),
            &MigrationOptions {
                reference: &reference,
                lambda_permille: 0,
            },
        );
        assert_eq!(moves, 0);
        assert_eq!(p.assignment(), reference.as_slice());
    }

    #[test]
    fn migration_never_blocks_violation_repair() {
        // same instance as refinement_repairs_bandwidth_violation, but
        // the violating start IS the reference: λ = 0 must still let
        // the repair move through (violations dominate migration)
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(10)).collect();
        g.add_edge(n[0], n[1], 20).unwrap();
        g.add_edge(n[1], n[2], 5).unwrap();
        g.add_edge(n[2], n[3], 20).unwrap();
        let c = Constraints::new(100, 10);
        let reference = vec![0, 1, 1, 1];
        let mut p = Partition::from_assignment(reference.clone(), 2).unwrap();
        constrained_refine_migration(
            &g,
            &mut p,
            &c,
            &RefineOptions::default(),
            &MigrationOptions {
                reference: &reference,
                lambda_permille: 0,
            },
        );
        assert!(c.is_feasible(&g, &p), "repair must override migration");
    }

    #[test]
    fn intermediate_lambda_trades_cut_for_migration() {
        // two triangles joined by one light edge; reference splits one
        // triangle across the cut. High λ fixes the split (cheaper
        // cut, one migration); λ = 0 keeps the reference.
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(10)).collect();
        for &(a, b) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(n[a], n[b], 10).unwrap();
        }
        g.add_edge(n[2], n[3], 1).unwrap();
        let c = Constraints::new(40, 1000);
        let reference = vec![0, 0, 1, 1, 1, 0]; // nodes 2 and 5 misplaced
        let run = |lambda: u32| {
            let mut p = Partition::from_assignment(reference.clone(), 2).unwrap();
            constrained_refine_migration(
                &g,
                &mut p,
                &c,
                &RefineOptions::default(),
                &MigrationOptions {
                    reference: &reference,
                    lambda_permille: lambda,
                },
            );
            (
                edge_cut(&g, &p),
                migration_mass(&reference, p.assignment(), &[10; 6]),
            )
        };
        let (cut_hi, mig_hi) = run(1000);
        let (cut_lo, mig_lo) = run(0);
        assert!(
            cut_hi < cut_lo,
            "high λ must chase the cut: {cut_hi} vs {cut_lo}"
        );
        assert_eq!(mig_lo, 0, "λ = 0 must not migrate a feasible reference");
        assert!(mig_hi > 0);
    }

    #[test]
    fn unassigned_reference_nodes_migrate_for_free() {
        // node 1 (reference UNASSIGNED) sits on the wrong side; λ near 0
        // still lets it move because its migration is free
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(10)).collect();
        g.add_edge(n[0], n[1], 20).unwrap();
        g.add_edge(n[2], n[3], 20).unwrap();
        g.add_edge(n[1], n[2], 1).unwrap();
        let c = Constraints::new(40, 1000);
        let reference = vec![0, Partition::UNASSIGNED, 1, 1];
        let mut p = Partition::from_assignment(vec![0, 1, 1, 1], 2).unwrap();
        constrained_refine_migration(
            &g,
            &mut p,
            &c,
            &RefineOptions::default(),
            &MigrationOptions {
                reference: &reference,
                lambda_permille: 1,
            },
        );
        assert_eq!(
            p.part_of(NodeId(1)),
            0,
            "free mover should join its heavy edge"
        );
    }

    #[test]
    fn migration_mass_counts_only_real_departures() {
        let reference = vec![0, 1, Partition::UNASSIGNED, 1];
        let assignment = vec![0, 0, 1, 1];
        let vwgt = vec![5, 7, 11, 13];
        assert_eq!(migration_mass(&reference, &assignment, &vwgt), 7);
    }

    #[test]
    fn single_part_is_a_no_op() {
        let g = bw_tension();
        let mut p = Partition::all_in_one(6, 1);
        let moves = constrained_refine(
            &g,
            &mut p,
            &Constraints::unconstrained(),
            &RefineOptions::default(),
        );
        assert_eq!(moves, 0);
        assert!(p.assignment().iter().all(|&a| a == 0));
    }
}

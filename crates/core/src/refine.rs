//! Constrained FM-style k-way refinement (paper §IV-B/C).
//!
//! The refinement run during un-coarsening differs from METIS-style
//! boundary refinement in its move admissibility and objective: the
//! primary objective is *constraint satisfaction* — per-pair bandwidth
//! `Bmax` and per-part resources `Rmax` — and only secondarily the total
//! cut. A move is taken when it lexicographically improves
//! `(violation magnitude, total cut)`; moves that would create or worsen
//! a violation are inadmissible.
//!
//! [`ConstrainedState`] keeps the K×K pairwise-traffic matrix and part
//! weights incrementally up to date, so evaluating a candidate move costs
//! O(degree) and applying it costs the same.

use ppn_graph::metrics::CutMatrix;
use ppn_graph::prng::{derive_seed, XorShift128Plus};
use ppn_graph::{Constraints, NodeId, Partition, WeightedGraph};

/// Incrementally-maintained constraint bookkeeping for a partition.
#[derive(Clone, Debug)]
pub struct ConstrainedState {
    /// Pairwise inter-part traffic.
    pub cut: CutMatrix,
    /// Per-part resource usage.
    pub part_weights: Vec<u64>,
    /// Per-part node counts.
    pub part_sizes: Vec<usize>,
    /// Current total cut.
    pub total_cut: u64,
}

/// Effect of a candidate move, measured lexicographically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveDelta {
    /// Change in total violation magnitude (bandwidth + resource).
    pub dviol: i64,
    /// Change in total cut.
    pub dcut: i64,
}

impl MoveDelta {
    /// Strictly improving under the lexicographic objective.
    pub fn improves(&self) -> bool {
        self.dviol < 0 || (self.dviol == 0 && self.dcut < 0)
    }
}

impl ConstrainedState {
    /// Build the state for a complete partition.
    pub fn new(g: &WeightedGraph, p: &Partition) -> Self {
        let cut = CutMatrix::compute(g, p);
        let total_cut = cut.total_cut();
        ConstrainedState {
            cut,
            part_weights: p.part_weights(g),
            part_sizes: p.part_sizes(),
            total_cut,
        }
    }

    /// Current violation magnitude against `c`.
    pub fn violation(&self, c: &Constraints) -> u64 {
        c.violation_magnitude(&self.cut, &self.part_weights)
    }

    /// True when all constraints hold.
    pub fn feasible(&self, c: &Constraints) -> bool {
        self.violation(c) == 0
    }

    /// Evaluate moving `v` from its current part to `to` without
    /// mutating anything. `scratch` must be a zeroed `k`-length buffer
    /// (used and re-zeroed internally).
    pub fn evaluate_move(
        &self,
        g: &WeightedGraph,
        p: &Partition,
        c: &Constraints,
        v: NodeId,
        to: u32,
        scratch: &mut Vec<(usize, i64)>,
    ) -> MoveDelta {
        let from = p.part_of(v);
        debug_assert_ne!(from, Partition::UNASSIGNED);
        if from == to {
            return MoveDelta { dviol: 0, dcut: 0 };
        }
        let k = self.cut.k();
        let (f, t) = (from as usize, to as usize);

        // per-pair traffic deltas caused by the move
        scratch.clear();
        let push = |scratch: &mut Vec<(usize, i64)>, a: usize, b: usize, d: i64| {
            if a == b {
                return;
            }
            let key = if a < b { a * k + b } else { b * k + a };
            if let Some(e) = scratch.iter_mut().find(|(p, _)| *p == key) {
                e.1 += d;
            } else {
                scratch.push((key, d));
            }
        };
        let mut dcut = 0i64;
        for &(u, e) in g.neighbors(v) {
            let q = p.part_of(u);
            if q == Partition::UNASSIGNED {
                continue;
            }
            let w = g.edge_weight(e) as i64;
            let q = q as usize;
            if q != f {
                push(scratch, f, q, -w);
                dcut -= w;
            }
            if q != t {
                push(scratch, t, q, w);
                dcut += w;
            }
        }

        // bandwidth violation delta over affected pairs
        let bmax = c.bmax as i64;
        let mut dviol = 0i64;
        for &(key, d) in scratch.iter() {
            let (a, b) = (key / k, key % k);
            let cur = self.cut.get(a, b) as i64;
            let before = (cur - bmax).max(0);
            let after = (cur + d - bmax).max(0);
            dviol += after - before;
        }

        // resource violation delta on the two parts
        let wv = g.node_weight(v) as i64;
        let rmax = c.rmax as i64;
        let wf = self.part_weights[f] as i64;
        let wt = self.part_weights[t] as i64;
        dviol += ((wt + wv - rmax).max(0) - (wt - rmax).max(0))
            - ((wf - rmax).max(0) - (wf - wv - rmax).max(0));

        MoveDelta { dviol, dcut }
    }

    /// Apply the move `v → to`, updating partition and bookkeeping.
    pub fn apply_move(&mut self, g: &WeightedGraph, p: &mut Partition, v: NodeId, to: u32) {
        let from = p.part_of(v);
        if from == to {
            return;
        }
        self.cut.apply_move(g, p, v, from, to);
        let wv = g.node_weight(v);
        self.part_weights[from as usize] -= wv;
        self.part_weights[to as usize] += wv;
        self.part_sizes[from as usize] -= 1;
        self.part_sizes[to as usize] += 1;
        p.assign(v, to);
        self.total_cut = self.cut.total_cut();
    }
}

/// Options for [`constrained_refine`].
#[derive(Clone, Debug)]
pub struct RefineOptions {
    /// Maximum sweeps.
    pub max_passes: usize,
    /// Visit-order seed.
    pub seed: u64,
    /// Never empty a part.
    pub protect_nonempty: bool,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            max_passes: 8,
            seed: 1,
            protect_nonempty: true,
        }
    }
}

/// Constrained refinement sweep: nodes are visited in random order; each
/// node moves to the neighbouring part with the best strictly-improving
/// `(Δviolation, Δcut)`. Returns the number of moves applied.
///
/// The cut never increases while violations are zero; violations never
/// increase, period.
pub fn constrained_refine(
    g: &WeightedGraph,
    p: &mut Partition,
    c: &Constraints,
    opts: &RefineOptions,
) -> usize {
    assert!(p.is_complete(), "refinement needs a complete partition");
    let k = p.k();
    let mut state = ConstrainedState::new(g, p);
    let mut rng = XorShift128Plus::new(derive_seed(opts.seed, 0xC0F1));
    let mut scratch: Vec<(usize, i64)> = Vec::new();
    let mut total_moves = 0;

    for _ in 0..opts.max_passes {
        let mut order: Vec<NodeId> = g.node_ids().collect();
        rng.shuffle(&mut order);
        let mut moves = 0;
        for v in order {
            let from = p.part_of(v) as usize;
            if opts.protect_nonempty && state.part_sizes[from] == 1 {
                continue;
            }
            // candidate targets: parts in the neighbourhood (cut can only
            // improve toward those), plus — when the source part violates
            // Rmax — the lightest part (pure resource escape).
            let mut candidates: Vec<u32> = Vec::new();
            for &(u, _) in g.neighbors(v) {
                let q = p.part_of(u);
                if q != from as u32 && !candidates.contains(&q) {
                    candidates.push(q);
                }
            }
            if state.part_weights[from] > c.rmax {
                if let Some(light) = (0..k as u32)
                    .filter(|&t| t as usize != from)
                    .min_by_key(|&t| state.part_weights[t as usize])
                {
                    if !candidates.contains(&light) {
                        candidates.push(light);
                    }
                }
            }
            let mut best: Option<(MoveDelta, u32)> = None;
            for &t in &candidates {
                let d = state.evaluate_move(g, p, c, v, t, &mut scratch);
                if !d.improves() {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bd, bt)) => (d.dviol, d.dcut, t) < (bd.dviol, bd.dcut, *bt),
                };
                if better {
                    best = Some((d, t));
                }
            }
            if let Some((_, t)) = best {
                state.apply_move(g, p, v, t);
                moves += 1;
            }
        }
        total_moves += moves;
        if moves == 0 {
            // single moves exhausted: when resources are still violated,
            // try pairwise exchanges — tight packings (every part close
            // to Rmax) are unreachable by single moves because any move
            // overshoots the receiving part
            let swaps = swap_pass(g, p, c, &mut state);
            total_moves += swaps;
            if swaps == 0 {
                break;
            }
        }
    }
    total_moves
}

/// One pass of violation-reducing pairwise exchanges between a
/// resource-violating part and every other part. A swap is accepted
/// only if it strictly reduces `(violation, cut)` lexicographically;
/// the exact effect (including bandwidth) is evaluated by applying both
/// moves on a scratch copy of the state. Returns the number of swaps.
fn swap_pass(
    g: &WeightedGraph,
    p: &mut Partition,
    c: &Constraints,
    state: &mut ConstrainedState,
) -> usize {
    let k = p.k();
    let mut swaps = 0;
    let mut progress = true;
    while progress && state.violation(c) > 0 {
        progress = false;
        let Some(over) = (0..k).find(|&a| state.part_weights[a] > c.rmax) else {
            break;
        };
        let viol_before = state.violation(c) as i64;
        let cut_before = state.total_cut as i64;
        let members = p.members();
        let mut best: Option<((i64, i64), NodeId, NodeId)> = None;
        for &u in &members[over] {
            let wu = g.node_weight(u);
            for b in (0..k).filter(|&b| b != over) {
                for &v in &members[b] {
                    let wv = g.node_weight(v);
                    if wv >= wu {
                        continue; // swap must lighten the violating part
                    }
                    // cheap resource prefilter before the exact check
                    let wa = state.part_weights[over];
                    let wb = state.part_weights[b];
                    let res_before =
                        (wa as i64 - c.rmax as i64).max(0) + (wb as i64 - c.rmax as i64).max(0);
                    let res_after = ((wa - wu + wv) as i64 - c.rmax as i64).max(0)
                        + ((wb - wv + wu) as i64 - c.rmax as i64).max(0);
                    if res_after >= res_before {
                        continue;
                    }
                    // exact evaluation on a scratch copy
                    let mut s2 = state.clone();
                    let mut p2 = p.clone();
                    s2.apply_move(g, &mut p2, u, b as u32);
                    s2.apply_move(g, &mut p2, v, over as u32);
                    let d = (
                        s2.violation(c) as i64 - viol_before,
                        s2.total_cut as i64 - cut_before,
                    );
                    if d.0 < 0 || (d.0 == 0 && d.1 < 0) {
                        match best {
                            Some((bd, _, _)) if bd <= d => {}
                            _ => best = Some((d, u, v)),
                        }
                    }
                }
            }
        }
        if let Some((_, u, v)) = best {
            let bu = p.part_of(v);
            state.apply_move(g, p, u, bu);
            state.apply_move(g, p, v, over as u32);
            swaps += 1;
            progress = true;
        }
    }
    swaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppn_graph::metrics::edge_cut;

    /// Two heavy producer-consumer pairs plus a moderate cross stream:
    /// the min-cut bisection routes 30 units over one pair — infeasible
    /// for Bmax = 20; the fix splits the traffic differently.
    fn bw_tension() -> WeightedGraph {
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(10)).collect();
        g.add_edge(n[0], n[1], 100).unwrap();
        g.add_edge(n[2], n[3], 100).unwrap();
        g.add_edge(n[1], n[2], 15).unwrap();
        g.add_edge(n[3], n[4], 15).unwrap();
        g.add_edge(n[4], n[5], 100).unwrap();
        g
    }

    #[test]
    fn state_matches_fresh_measurement_after_moves() {
        let g = bw_tension();
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
        let mut s = ConstrainedState::new(&g, &p);
        s.apply_move(&g, &mut p, NodeId(1), 1);
        s.apply_move(&g, &mut p, NodeId(4), 0);
        let fresh = ConstrainedState::new(&g, &p);
        assert_eq!(s.cut, fresh.cut);
        assert_eq!(s.part_weights, fresh.part_weights);
        assert_eq!(s.total_cut, fresh.total_cut);
    }

    #[test]
    fn evaluate_matches_apply() {
        let g = bw_tension();
        let c = Constraints::new(25, 20);
        let mut scratch = Vec::new();
        for to in 0..3u32 {
            for vi in 0..6u32 {
                let mut p = Partition::from_assignment(vec![0, 0, 1, 1, 2, 2], 3).unwrap();
                let s = ConstrainedState::new(&g, &p);
                let viol_before = s.violation(&c) as i64;
                let cut_before = s.total_cut as i64;
                let d = s.evaluate_move(&g, &p, &c, NodeId(vi), to, &mut scratch);
                let mut s2 = s.clone();
                s2.apply_move(&g, &mut p, NodeId(vi), to);
                assert_eq!(
                    d.dviol,
                    s2.violation(&c) as i64 - viol_before,
                    "node {vi} → {to}: violation delta mismatch"
                );
                assert_eq!(
                    d.dcut,
                    s2.total_cut as i64 - cut_before,
                    "node {vi} → {to}: cut delta mismatch"
                );
            }
        }
    }

    #[test]
    fn refinement_reduces_cut_without_violating() {
        let g = bw_tension();
        let c = Constraints::new(30, 200);
        // scrambled start
        let mut p = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1], 2).unwrap();
        let before = edge_cut(&g, &p);
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        let after = edge_cut(&g, &p);
        assert!(after <= before);
        assert!(
            c.is_feasible(&g, &p),
            "refinement must keep feasibility reachable"
        );
    }

    #[test]
    fn refinement_repairs_bandwidth_violation() {
        // a -20- b -5- c -20- d, with b on the wrong side: pair traffic
        // 20 > Bmax 10; moving b over drops it to 5.
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(10)).collect();
        g.add_edge(n[0], n[1], 20).unwrap();
        g.add_edge(n[1], n[2], 5).unwrap();
        g.add_edge(n[2], n[3], 20).unwrap();
        let c = Constraints::new(100, 10);
        let mut p = Partition::from_assignment(vec![0, 1, 1, 1], 2).unwrap();
        let s = ConstrainedState::new(&g, &p);
        assert_eq!(
            s.violation(&c),
            10,
            "start must violate for the test to bite"
        );
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        let s2 = ConstrainedState::new(&g, &p);
        assert_eq!(s2.violation(&c), 0, "single-move repair should succeed");
        assert!(c.is_feasible(&g, &p));
    }

    #[test]
    fn refinement_repairs_resource_violation() {
        // part 1 overweight; moving any one node over fixes it without
        // touching a heavy edge
        let mut g = WeightedGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(10)).collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1], 2).unwrap();
        }
        let c = Constraints::new(30, 100);
        let mut p = Partition::from_assignment(vec![0, 1, 1, 1, 1], 2).unwrap();
        assert!(ConstrainedState::new(&g, &p).violation(&c) > 0);
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        assert!(c.is_feasible(&g, &p), "resource repair should succeed");
    }

    #[test]
    fn violations_never_increase() {
        let g = bw_tension();
        let c = Constraints::new(30, 18);
        for seed in 0..8 {
            let assign: Vec<u32> = (0..6).map(|i| ((i + seed) % 3) as u32).collect();
            let mut p = Partition::from_assignment(assign, 3).unwrap();
            let v_before = ConstrainedState::new(&g, &p).violation(&c);
            constrained_refine(
                &g,
                &mut p,
                &c,
                &RefineOptions {
                    seed: seed as u64,
                    ..Default::default()
                },
            );
            let v_after = ConstrainedState::new(&g, &p).violation(&c);
            assert!(v_after <= v_before, "seed {seed}: {v_before} -> {v_after}");
        }
    }

    #[test]
    fn protect_nonempty_holds() {
        let g = bw_tension();
        let c = Constraints::unconstrained();
        let mut p = Partition::from_assignment(vec![0, 1, 1, 1, 1, 1], 2).unwrap();
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        assert!(p.part_sizes().iter().all(|&s| s >= 1));
    }

    #[test]
    fn swap_pass_solves_tight_packing() {
        // two parts at 135 and 124 with Rmax 133: no single move helps
        // (every node weighs ≥ 30, so any move overshoots the receiving
        // part), but swapping 45 ↔ 40 lands at 130/129.
        let mut g = WeightedGraph::new();
        let a = g.add_node(60);
        let b = g.add_node(45);
        let c0 = g.add_node(30);
        let d = g.add_node(40);
        let e = g.add_node(49);
        let f = g.add_node(35);
        g.add_edge(a, b, 9).unwrap();
        g.add_edge(b, c0, 9).unwrap();
        g.add_edge(d, e, 9).unwrap();
        g.add_edge(e, f, 9).unwrap();
        g.add_edge(c0, d, 3).unwrap();
        let cons = Constraints::new(133, 1000);
        let mut p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        assert_eq!(ConstrainedState::new(&g, &p).violation(&cons), 2);
        let moves = constrained_refine(&g, &mut p, &cons, &RefineOptions::default());
        assert!(moves > 0, "the swap pass must engage");
        assert!(
            cons.is_feasible(&g, &p),
            "swap should repair the packing: weights {:?}",
            p.part_weights(&g)
        );
    }

    #[test]
    fn feasible_stays_feasible() {
        let g = bw_tension();
        let c = Constraints::new(30, 120);
        let mut p = Partition::from_assignment(vec![0, 0, 0, 1, 1, 1], 2).unwrap();
        assert!(c.is_feasible(&g, &p));
        constrained_refine(&g, &mut p, &c, &RefineOptions::default());
        assert!(c.is_feasible(&g, &p));
    }
}

//! Properties of the parallel refinement engine and its serial twin.
//!
//! The parallel sweep ([`constrained_refine_parallel`]) frozen-evaluates
//! the active set concurrently and commits serially in visit order,
//! re-validating each candidate — so it must (a) be deterministic and
//! independent of `RAYON_NUM_THREADS`, (b) preserve the serial engine's
//! invariants (violations never increase; feasible stays feasible), and
//! (c) share the serial engine's fixed points: once the parallel engine
//! converges, the serial engine has no move left to make.
//!
//! CI runs this suite in a thread matrix (`RAYON_NUM_THREADS` ∈
//! {1, 2, 8}); the assertions are thread-count-agnostic, so any
//! divergence across matrix cells is a real scheduling leak.

use gp_core::{
    constrained_refine, constrained_refine_csr, constrained_refine_parallel, gp_partition,
    ConstrainedState, GpParams, RefineOptions,
};
use ppn_graph::prng::XorShift128Plus;
use ppn_graph::{Constraints, Csr, Partition, WeightedGraph};

/// Ring + random chords with skewed weights: enough structure for the
/// boundary sweep and the swap pass to both engage.
fn random_graph(n: usize, chords_per_node: usize, seed: u64) -> WeightedGraph {
    let mut rng = XorShift128Plus::new(seed);
    let mut g = WeightedGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|_| g.add_node(1 + rng.next_below(9) as u64))
        .collect();
    for i in 0..n {
        g.add_or_merge_edge(ids[i], ids[(i + 1) % n], 1 + rng.next_below(20) as u64)
            .unwrap();
    }
    for _ in 0..n * chords_per_node {
        let a = rng.next_below(n);
        let b = rng.next_below(n);
        if a != b {
            g.add_or_merge_edge(ids[a], ids[b], 1 + rng.next_below(8) as u64)
                .unwrap();
        }
    }
    g
}

fn random_partition(n: usize, k: usize, seed: u64) -> Partition {
    let mut rng = XorShift128Plus::new(seed);
    // round-robin base guarantees no empty part, then a shuffle step
    // scrambles locality
    let mut assign: Vec<u32> = (0..n).map(|i| (i % k) as u32).collect();
    rng.shuffle(&mut assign);
    Partition::from_assignment(assign, k).unwrap()
}

/// Mid-tension constraints: satisfiable but not trivially so.
fn constraints_for(g: &WeightedGraph, k: usize) -> Constraints {
    let rmax = g.total_node_weight().div_ceil(k as u64) * 13 / 10;
    let bmax = g.total_edge_weight() / k as u64;
    Constraints::new(rmax.max(1), bmax.max(1))
}

fn opts(seed: u64) -> RefineOptions {
    RefineOptions {
        max_passes: 64,
        seed,
        protect_nonempty: true,
    }
}

#[test]
fn parallel_refine_is_deterministic() {
    for seed in 0..6u64 {
        let g = random_graph(160, 2, seed);
        let k = 4;
        let c = constraints_for(&g, k);
        let p0 = random_partition(g.num_nodes(), k, seed ^ 0xA5);
        let mut pa = p0.clone();
        let mut pb = p0;
        let ma = constrained_refine_parallel(&g, &mut pa, &c, &opts(seed));
        let mb = constrained_refine_parallel(&g, &mut pb, &c, &opts(seed));
        assert_eq!(ma, mb, "seed {seed}: move counts diverged");
        assert_eq!(pa, pb, "seed {seed}: partitions diverged");
    }
}

#[test]
fn parallel_refine_reaches_a_serial_fixed_point() {
    for seed in 0..8u64 {
        let g = random_graph(200, 2, seed);
        let k = 4;
        let c = constraints_for(&g, k);
        let mut p = random_partition(g.num_nodes(), k, seed ^ 0x5A);
        constrained_refine_parallel(&g, &mut p, &c, &opts(seed));
        // the parallel engine converged (64 passes is far beyond what
        // these instances need); the serial engine must find nothing
        let mut p2 = p.clone();
        let serial_moves = constrained_refine(&g, &mut p2, &c, &opts(seed));
        assert_eq!(
            serial_moves, 0,
            "seed {seed}: serial engine moved after parallel convergence"
        );
        assert_eq!(p, p2, "seed {seed}: zero moves must leave p unchanged");
    }
}

#[test]
fn parallel_refine_never_increases_violation() {
    for seed in 0..8u64 {
        let g = random_graph(120, 3, seed);
        let k = 5;
        let c = constraints_for(&g, k);
        let mut p = random_partition(g.num_nodes(), k, seed ^ 0x33);
        let before = ConstrainedState::new(&g, &p).violation(&c);
        constrained_refine_parallel(&g, &mut p, &c, &opts(seed));
        let after = ConstrainedState::new(&g, &p).violation(&c);
        assert!(
            after <= before,
            "seed {seed}: violation grew {before} -> {after}"
        );
    }
}

#[test]
fn parallel_refine_keeps_feasible_feasible() {
    for seed in 0..6u64 {
        let g = random_graph(90, 2, seed);
        let k = 3;
        // generous limits: the starting round-robin partition is feasible
        let c = Constraints::new(g.total_node_weight(), g.total_edge_weight());
        let mut p = random_partition(g.num_nodes(), k, seed ^ 0x77);
        assert!(c.is_feasible(&g, &p));
        constrained_refine_parallel(&g, &mut p, &c, &opts(seed));
        assert!(c.is_feasible(&g, &p), "seed {seed}: feasibility lost");
    }
}

#[test]
fn csr_entry_is_bit_identical_to_graph_entry() {
    for seed in 0..6u64 {
        let g = random_graph(140, 2, seed);
        let k = 4;
        let c = constraints_for(&g, k);
        let p0 = random_partition(g.num_nodes(), k, seed ^ 0x11);
        let mut pg = p0.clone();
        let mut pc = p0;
        let mg = constrained_refine(&g, &mut pg, &c, &opts(seed));
        let csr = Csr::from_graph(&g);
        let mc = constrained_refine_csr(&csr, &mut pc, &c, &opts(seed));
        assert_eq!(mg, mc, "seed {seed}");
        assert_eq!(pg, pc, "seed {seed}");
    }
}

#[test]
fn gp_partition_gate_is_inert_below_threshold() {
    // no level of a 200-node instance reaches the default 200k-node
    // parallel-refine threshold, so enabling/disabling the gate must not
    // change the result — this pins the bit-compatibility claim the
    // params docs make
    let g = random_graph(200, 2, 42);
    let c = constraints_for(&g, 4);
    let on = GpParams {
        max_cycles: 2,
        ..GpParams::default()
    };
    let off = GpParams {
        parallel_refine_min_nodes: usize::MAX,
        ..on.clone()
    };
    let a = gp_partition(&g, 4, &c, &on);
    let b = gp_partition(&g, 4, &c, &off);
    match (a, b) {
        (Ok(ra), Ok(rb)) => assert_eq!(ra.partition, rb.partition),
        (Err(ea), Err(eb)) => assert_eq!(ea.best.partition, eb.best.partition),
        _ => panic!("gate changed feasibility"),
    }
}

#[test]
fn gp_partition_with_forced_parallel_refine_stays_valid() {
    // force every level through the parallel sweep: results may differ
    // from the serial path but must satisfy the same contract
    let g = random_graph(240, 2, 7);
    let c = constraints_for(&g, 4);
    let params = GpParams {
        max_cycles: 3,
        parallel_refine_min_nodes: 0,
        ..GpParams::default()
    };
    let p1 = gp_partition(&g, 4, &c, &params);
    let p2 = gp_partition(&g, 4, &c, &params);
    let (r1, r2) = match (p1, p2) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(a), Err(b)) => (a.best, b.best),
        _ => panic!("forced-parallel runs disagreed on feasibility"),
    };
    assert_eq!(r1.partition, r2.partition, "forced-parallel nondeterminism");
    assert!(r1.partition.is_complete());
    if r1.feasible {
        assert!(c.is_feasible(&g, &r1.partition));
    }
}

//! Property tests for the GP partitioner's invariants.

use gp_core::coarsen::{gp_coarsen, run_matching};
use gp_core::refine::{constrained_refine, ConstrainedState, RefineOptions};
use gp_core::refine_reference::constrained_refine_reference;
use gp_core::{gp_partition, GpParams, MatchingKind};
use ppn_graph::metrics::{edge_cut, PartitionQuality};
use ppn_graph::{Constraints, NodeId, Partition, WeightedGraph};
use proptest::prelude::*;

/// Random connected-ish graph strategy (spanning chain + mask edges).
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..20, any::<u64>(), 1u64..40, 1u64..12).prop_map(|(n, mask, wmax, emax)| {
        let mut g = WeightedGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| g.add_node(1 + (mask.rotate_left(i as u32 * 3) % wmax)))
            .collect();
        for i in 1..n {
            let w = 1 + (mask.rotate_right(i as u32) % emax);
            g.add_edge(ids[i - 1], ids[i], w).unwrap();
        }
        let mut bit = 1u32;
        for i in 0..n {
            for j in (i + 2)..n {
                bit = bit.wrapping_add(7);
                if (mask.rotate_left(bit) & 7) == 0 {
                    let w = 1 + (mask.rotate_right(bit) % emax);
                    let _ = g.add_edge(ids[i], ids[j], w);
                }
            }
        }
        g
    })
}

fn arb_partition(n: usize, k: usize, seed: u64) -> Partition {
    let assign: Vec<u32> = (0..n)
        .map(|i| ((seed.rotate_left(i as u32 * 5) ^ i as u64) % k as u64) as u32)
        .collect();
    Partition::from_assignment(assign, k).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_matchings_are_valid(g in arb_graph(), seed in any::<u64>()) {
        for kind in MatchingKind::WITH_NODE_SCAN {
            let m = run_matching(kind, &g, seed);
            prop_assert!(m.validate(&g), "{kind} produced an invalid matching");
        }
    }

    #[test]
    fn all_matchings_track_absorbed_weight_exactly(g in arb_graph(), seed in any::<u64>()) {
        for kind in MatchingKind::WITH_NODE_SCAN {
            let m = run_matching(kind, &g, seed);
            prop_assert_eq!(m.absorbed(), m.absorbed_weight(&g), "{} drifted", kind);
        }
    }

    #[test]
    fn fast_kmeans_assignment_equals_lloyd_scan(
        values_i in proptest::collection::vec(any::<i32>(), 1..80),
        centroids_i in proptest::collection::vec(any::<i32>(), 1..40),
        dup_mask in any::<u64>()
    ) {
        // floats via integers: the vendored proptest shim has no float
        // strategies, and integer-derived values still hit every branch
        let values: Vec<f64> = values_i.iter().map(|&x| x as f64 / 64.0).collect();
        let centroids: Vec<f64> = centroids_i.iter().map(|&x| x as f64 / 64.0).collect();
        // as generated (generic position) …
        prop_assert_eq!(
            gp_core::kmeans::assign_fast(&values, &centroids),
            gp_core::kmeans::assign_reference(&values, &centroids)
        );
        // … and with planted duplicates and exact-midpoint queries, the
        // adversarial inputs for the bracketing tie-breaks
        let mut centroids = centroids;
        for i in 1..centroids.len() {
            if dup_mask.rotate_left(i as u32) & 3 == 0 {
                centroids[i] = centroids[i - 1];
            }
        }
        let mut values = values;
        for i in 0..values.len() {
            let a = centroids[i % centroids.len()];
            let b = centroids[(i * 7 + 1) % centroids.len()];
            if dup_mask.rotate_right(i as u32) & 1 == 0 {
                values[i] = (a + b) / 2.0;
            }
        }
        prop_assert_eq!(
            gp_core::kmeans::assign_fast(&values, &centroids),
            gp_core::kmeans::assign_reference(&values, &centroids)
        );
    }

    #[test]
    fn fast_kmeans_equals_reference_on_node_weights(
        g in arb_graph(),
        seed in any::<u64>(),
        k_div in 1usize..9
    ) {
        let values: Vec<f64> = g.node_ids().map(|v| g.node_weight(v) as f64).collect();
        let k = (values.len() / k_div).max(2).min(values.len());
        prop_assert_eq!(
            gp_core::kmeans::kmeans_1d(&values, k, seed, 32),
            gp_core::kmeans::kmeans_1d_reference(&values, k, seed, 32)
        );
    }

    #[test]
    fn reference_and_optimized_coarsening_are_bit_identical(
        g in arb_graph(),
        seed in any::<u64>(),
        target in 2usize..8
    ) {
        let fast = gp_coarsen(&g, &MatchingKind::ALL, target, seed);
        let slow = gp_core::gp_coarsen_reference(&g, &MatchingKind::ALL, target, seed);
        prop_assert_eq!(fast.size_trace(), slow.size_trace());
        prop_assert_eq!(fast.levels.len(), slow.levels.len());
        for (a, b) in fast.levels.iter().zip(&slow.levels) {
            prop_assert_eq!(a.matching_kind, b.matching_kind);
            prop_assert_eq!(&a.map, &b.map);
            let ea: Vec<_> = a.fine.edges().collect();
            let eb: Vec<_> = b.fine.edges().collect();
            prop_assert_eq!(ea, eb);
            prop_assert_eq!(a.fine.node_weights(), b.fine.node_weights());
        }
        let ea: Vec<_> = fast.coarsest().edges().collect();
        let eb: Vec<_> = slow.coarsest().edges().collect();
        prop_assert_eq!(ea, eb);
    }

    #[test]
    fn hierarchy_preserves_weight_for_any_matching_mix(
        g in arb_graph(),
        seed in any::<u64>(),
        target in 2usize..8
    ) {
        let h = gp_coarsen(&g, &MatchingKind::ALL, target, seed);
        prop_assert_eq!(h.coarsest().total_node_weight(), g.total_node_weight());
        let trace = h.size_trace();
        prop_assert!(trace.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn refinement_never_worsens_violation_or_feasible_cut(
        g in arb_graph(),
        seed in any::<u64>(),
        k in 2usize..5,
        rmax_frac in 3u64..8,
        bmax_frac in 2u64..8
    ) {
        let c = Constraints::new(
            (g.total_node_weight() * rmax_frac / (2 * k as u64)).max(1),
            (g.total_edge_weight() * bmax_frac / 8).max(1),
        );
        let mut p = arb_partition(g.num_nodes(), k, seed);
        let before = ConstrainedState::new(&g, &p);
        let v_before = before.violation(&c);
        let cut_before = edge_cut(&g, &p);
        constrained_refine(&g, &mut p, &c, &RefineOptions {
            seed,
            ..Default::default()
        });
        let after = ConstrainedState::new(&g, &p);
        prop_assert!(after.violation(&c) <= v_before,
            "violation rose: {} -> {}", v_before, after.violation(&c));
        if v_before == 0 {
            prop_assert!(edge_cut(&g, &p) <= cut_before,
                "feasible cut rose: {} -> {}", cut_before, edge_cut(&g, &p));
        }
        prop_assert!(p.is_complete());
    }

    #[test]
    fn reference_refinement_never_worsens_violation_or_feasible_cut(
        g in arb_graph(),
        seed in any::<u64>(),
        k in 2usize..5,
        rmax_frac in 3u64..8,
        bmax_frac in 2u64..8
    ) {
        let c = Constraints::new(
            (g.total_node_weight() * rmax_frac / (2 * k as u64)).max(1),
            (g.total_edge_weight() * bmax_frac / 8).max(1),
        );
        let mut p = arb_partition(g.num_nodes(), k, seed);
        let v_before = ConstrainedState::new(&g, &p).violation(&c);
        let cut_before = edge_cut(&g, &p);
        constrained_refine_reference(&g, &mut p, &c, &RefineOptions {
            seed,
            ..Default::default()
        });
        let after = ConstrainedState::new(&g, &p);
        prop_assert!(after.violation(&c) <= v_before);
        if v_before == 0 {
            prop_assert!(edge_cut(&g, &p) <= cut_before);
        }
    }

    #[test]
    fn boundary_refinement_reaches_single_move_fixed_point(
        g in arb_graph(),
        seed in any::<u64>(),
        k in 2usize..5,
        rmax_frac in 3u64..8,
        bmax_frac in 2u64..8
    ) {
        // the boundary-restricted sweep must terminate at the same kind
        // of fixed point as a full sweep: no node — boundary or
        // interior — may still have a strictly improving single move
        let c = Constraints::new(
            (g.total_node_weight() * rmax_frac / (2 * k as u64)).max(1),
            (g.total_edge_weight() * bmax_frac / 8).max(1),
        );
        let mut p = arb_partition(g.num_nodes(), k, seed);
        constrained_refine(&g, &mut p, &c, &RefineOptions {
            seed,
            max_passes: 64, // far above what these sizes need to converge
            ..Default::default()
        });
        let s = ConstrainedState::new_tracked(&g, &p, &c);
        let mut scratch = Vec::new();
        for v in g.node_ids() {
            let from = p.part_of(v) as usize;
            if s.part_sizes[from] == 1 {
                continue; // protected, as during refinement
            }
            for t in 0..k as u32 {
                if t as usize == from {
                    continue;
                }
                let d = s.evaluate_move(&g, &p, &c, v, t, &mut scratch);
                prop_assert!(
                    !d.improves(),
                    "node {:?} -> {} still improves: {:?}", v, t, d
                );
            }
        }
    }

    #[test]
    fn gp_parallel_flag_does_not_change_result(
        g in arb_graph(),
        seed in any::<u64>(),
        k in 2usize..4
    ) {
        // the rayon shim actually splits work across threads now; the
        // total-order reductions must keep results schedule-independent
        let c = Constraints::new(
            (g.total_node_weight() * 3 / (2 * k as u64)).max(1),
            (g.total_edge_weight() / 2).max(1),
        );
        let base = GpParams { max_cycles: 2, initial_restarts: 6, ..GpParams::default() }
            .with_seed(seed);
        let par = GpParams { parallel: true, ..base.clone() };
        let seq = GpParams { parallel: false, ..base };
        let a = gp_partition(&g, k, &c, &par);
        let b = gp_partition(&g, k, &c, &seq);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.partition, y.partition),
            (Err(x), Err(y)) => prop_assert_eq!(x.best.partition, y.best.partition),
            _ => prop_assert!(false, "parallel flag flipped the feasibility verdict"),
        }
    }

    #[test]
    fn gp_verdict_is_correct(
        g in arb_graph(),
        seed in any::<u64>(),
        k in 2usize..4
    ) {
        // generous constraints: GP must succeed and its answer must be
        // genuinely feasible
        let c = Constraints::new(g.total_node_weight(), g.total_edge_weight());
        let params = GpParams { max_cycles: 2, initial_restarts: 4, ..GpParams::default() }
            .with_seed(seed);
        match gp_partition(&g, k, &c, &params) {
            Ok(r) => {
                prop_assert!(r.feasible);
                prop_assert!(c.is_feasible(&g, &r.partition));
                let q = PartitionQuality::measure(&g, &r.partition);
                prop_assert_eq!(q.total_cut, r.quality.total_cut);
            }
            Err(_) => prop_assert!(false, "generous constraints must be feasible"),
        }
    }

    #[test]
    fn gp_never_lies_about_feasibility(
        g in arb_graph(),
        seed in any::<u64>(),
        rmax in 1u64..60,
        bmax in 1u64..30
    ) {
        // arbitrary (often impossible) constraints: whatever GP returns,
        // its feasibility verdict must agree with an independent check
        let c = Constraints::new(rmax, bmax);
        let params = GpParams { max_cycles: 2, initial_restarts: 3, ..GpParams::default() }
            .with_seed(seed);
        match gp_partition(&g, 3.min(g.num_nodes()), &c, &params) {
            Ok(r) => prop_assert!(c.is_feasible(&g, &r.partition)),
            Err(e) => {
                prop_assert!(!c.is_feasible(&g, &e.best.partition));
                prop_assert!(e.best.partition.is_complete());
            }
        }
    }

    #[test]
    fn move_evaluation_always_matches_application(
        g in arb_graph(),
        seed in any::<u64>(),
        k in 2usize..5,
        node in any::<u32>(),
        to in any::<u32>()
    ) {
        let mut p = arb_partition(g.num_nodes(), k, seed);
        let c = Constraints::new(
            g.total_node_weight() / k as u64 + 1,
            g.total_edge_weight() / 3 + 1,
        );
        let v = NodeId(node % g.num_nodes() as u32);
        let t = to % k as u32;
        let s = ConstrainedState::new(&g, &p);
        let mut scratch = Vec::new();
        let d = s.evaluate_move(&g, &p, &c, v, t, &mut scratch);
        let (v0, c0) = (s.violation(&c) as i64, s.total_cut as i64);
        let mut s2 = s.clone();
        s2.apply_move(&g, &mut p, v, t);
        prop_assert_eq!(d.dviol, s2.violation(&c) as i64 - v0);
        prop_assert_eq!(d.dcut, s2.total_cut as i64 - c0);
    }
}

//! Clique-expansion equivalence: on hypergraphs whose nets all have
//! exactly two pins, the connectivity metric degenerates to the edge
//! cut, the per-boundary traffic matrix to the pairwise cut matrix, and
//! the hyper partitioner's feasibility verdict must match `gp-core`'s.
//! This anchors the new engine to the existing, paper-validated one.

use gp_core::{gp_partition, GpParams};
use ppn_graph::metrics::CutMatrix;
use ppn_graph::prng::XorShift128Plus;
use ppn_graph::{Constraints, NodeId, Partition, WeightedGraph};
use ppn_hyper::{
    hyper_partition, HyperContractScratch, HyperParams, HyperQuality, Hypergraph,
    HypergraphBuilder, NetConnectivity,
};
use proptest::prelude::*;

/// Random connected weighted graph strategy (the 2-pin-net source).
fn arb_graph() -> impl Strategy<Value = WeightedGraph> {
    (4usize..24, 0usize..30, any::<u64>())
        .prop_map(|(n, extra, seed)| ppn_gen_like(n, n - 1 + extra, seed))
}

/// Connected random graph without depending on ppn-gen (spanning tree +
/// random chords), deterministic per seed.
fn ppn_gen_like(n: usize, m: usize, seed: u64) -> WeightedGraph {
    let mut rng = XorShift128Plus::new(seed);
    let mut g = WeightedGraph::new();
    for _ in 0..n {
        g.add_node(5 + rng.next_below(40) as u64);
    }
    for i in 1..n {
        let parent = rng.next_below(i);
        g.add_edge(
            NodeId::from_index(i),
            NodeId::from_index(parent),
            1 + rng.next_below(9) as u64,
        )
        .unwrap();
    }
    let mut added = n - 1;
    let mut guard = 0;
    while added < m && guard < 50 * n {
        guard += 1;
        let a = rng.next_below(n);
        let b = rng.next_below(n);
        if a == b {
            continue;
        }
        let (u, v) = (NodeId::from_index(a), NodeId::from_index(b));
        if g.find_edge(u, v).is_some() {
            continue;
        }
        g.add_edge(u, v, 1 + rng.next_below(9) as u64).unwrap();
        added += 1;
    }
    g
}

/// Random multicast-ish hypergraph: every node roots a few nets over
/// random co-pins, weights varied, plus planted duplicate nets (same
/// root, permuted pins) so the identical-net merge has real work.
fn random_hypergraph(n: usize, seed: u64) -> Hypergraph {
    let mut rng = XorShift128Plus::new(seed);
    let mut b = HypergraphBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|_| b.add_node(1 + rng.next_below(9) as u64))
        .collect();
    for v in 0..n {
        let nets = 1 + rng.next_below(3);
        for _ in 0..nets {
            let fanout = 1 + rng.next_below(4.min(n - 1));
            let mut pins = vec![ids[v]];
            for _ in 0..fanout {
                pins.push(ids[rng.next_below(n)]);
            }
            let w = 1 + rng.next_below(7) as u64;
            if pins.iter().skip(1).any(|&p| p != pins[0]) {
                b.add_net(w, &pins);
                if rng.next_below(3) == 0 {
                    // duplicate with permuted non-root pins
                    pins[1..].reverse();
                    b.add_net(w + 1, &pins);
                }
            }
        }
    }
    b.build()
}

/// Random mate array: repeatedly pair two distinct unmatched nodes.
fn random_mate(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = XorShift128Plus::new(seed);
    let mut mate = vec![ppn_hyper::coarsen::UNMATCHED; n];
    for _ in 0..n {
        let a = rng.next_below(n);
        let b = rng.next_below(n);
        if a != b
            && mate[a] == ppn_hyper::coarsen::UNMATCHED
            && mate[b] == ppn_hyper::coarsen::UNMATCHED
        {
            mate[a] = b as u32;
            mate[b] = a as u32;
        }
    }
    mate
}

fn random_partition(n: usize, k: usize, seed: u64) -> Partition {
    let mut rng = XorShift128Plus::new(seed);
    let assign: Vec<u32> = (0..n).map(|_| rng.next_below(k) as u32).collect();
    Partition::from_assignment(assign, k).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn two_pin_connectivity_equals_edge_cut(g in arb_graph(), k in 2usize..5, pseed in any::<u64>()) {
        let hg = Hypergraph::from_graph(&g);
        hg.validate().unwrap();
        let p = random_partition(g.num_nodes(), k, pseed);
        let cut = CutMatrix::compute(&g, &p);
        let q = HyperQuality::measure(&hg, &p);
        prop_assert_eq!(q.connectivity_cost, cut.total_cut(), "conn-(λ-1) vs edge cut");
        prop_assert_eq!(q.max_local_bandwidth, cut.max_local_bandwidth());
        for a in 0..k {
            for b in 0..k {
                prop_assert_eq!(
                    q.traffic.get(a, b), cut.get(a, b),
                    "pair ({}, {})", a, b
                );
            }
        }
    }

    #[test]
    fn two_pin_tracker_stays_exact_under_moves(g in arb_graph(), k in 2usize..5, mseed in any::<u64>()) {
        let hg = Hypergraph::from_graph(&g);
        let mut p = random_partition(g.num_nodes(), k, mseed);
        let mut s = NetConnectivity::new(&hg, &p);
        s.track_bmax(20);
        let mut cut = CutMatrix::compute(&g, &p);
        cut.track_bmax(20);
        let mut rng = XorShift128Plus::new(mseed ^ 0xABCD);
        for _ in 0..20 {
            let v = NodeId::from_index(rng.next_below(g.num_nodes()));
            let to = rng.next_below(k) as u32;
            let from = p.part_of(v);
            s.apply_move(&hg, v, from, to);
            cut.apply_move(&g, &p, v, from, to);
            p.assign(v, to);
            prop_assert_eq!(s.connectivity_cost(), cut.total_cut());
            prop_assert_eq!(s.tracked_excess(), cut.tracked_excess());
        }
    }

    #[test]
    fn tracker_stays_exact_on_multicast_hypergraphs_under_long_sequences(
        n in 4usize..24,
        hseed in any::<u64>(),
        k in 2usize..6,
        mseed in any::<u64>(),
    ) {
        // true multicast nets (fanout > 1), not the 2-pin embedding:
        // λ, the per-net pin counts, the BandwidthMatrix and the
        // tracked excess must all match a from-scratch recomputation
        // at every step of a long random move sequence
        let hg = random_hypergraph(n, hseed);
        let mut p = random_partition(n, k, mseed);
        let mut s = NetConnectivity::new(&hg, &p);
        let bmax = 1 + (hseed % 13);
        s.track_bmax(bmax);
        let mut rng = XorShift128Plus::new(mseed ^ 0x10C0_5EED);
        for step in 0..120 {
            let v = NodeId::from_index(rng.next_below(n));
            let to = rng.next_below(k) as u32;
            let from = p.part_of(v);
            s.apply_move(&hg, v, from, to);
            p.assign(v, to);

            let fresh = NetConnectivity::new(&hg, &p);
            prop_assert_eq!(s.connectivity_cost(), fresh.connectivity_cost(), "step {}", step);
            prop_assert_eq!(s.cut_nets(), fresh.cut_nets(), "step {}", step);
            prop_assert_eq!(s.traffic(), fresh.traffic(), "step {}", step);
            prop_assert_eq!(
                s.tracked_excess(),
                fresh.traffic().violation_magnitude(bmax),
                "step {}",
                step
            );
            // deep per-net state every few steps (λ and pin counts)
            if step % 10 == 9 {
                for e in hg.net_ids() {
                    prop_assert_eq!(s.lambda(e), fresh.lambda(e), "net {:?}", e);
                    for q in 0..k {
                        prop_assert_eq!(
                            s.pin_count(e, q),
                            fresh.pin_count(e, q),
                            "net {:?} part {}",
                            e,
                            q
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fingerprint_net_merge_equals_hashmap_reference(
        n in 3usize..28,
        hseed in any::<u64>(),
        mseeds in proptest::collection::vec(any::<u64>(), 1..4)
    ) {
        // one scratch reused across matings — the multilevel usage
        let hg = random_hypergraph(n, hseed);
        hg.validate().unwrap();
        let mut scratch = HyperContractScratch::new();
        for mseed in mseeds {
            let mate = random_mate(n, mseed);
            let (c_opt, map_opt) = ppn_hyper::contract_with(&hg, &mate, &mut scratch);
            let (c_ref, map_ref) = ppn_hyper::contract_reference(&hg, &mate);
            prop_assert_eq!(map_opt, map_ref);
            prop_assert_eq!(c_opt, c_ref);
        }
    }

    #[test]
    fn feasibility_verdicts_match_gp_core(g in arb_graph(), k in 2usize..4) {
        let hg = Hypergraph::from_graph(&g);
        // generous constraints: both engines must report feasible
        let generous = Constraints::new(
            g.total_node_weight(),
            g.total_edge_weight().max(1),
        );
        let hyper_ok = hyper_partition(&hg, k, &generous, &HyperParams::default()).is_ok();
        let gp_ok = gp_partition(&g, k, &generous, &GpParams::default()).is_ok();
        prop_assert_eq!(hyper_ok, gp_ok, "generous constraints");
        prop_assert!(hyper_ok);

        // provably impossible: Rmax below the heaviest node
        let impossible = Constraints::new(
            g.max_node_weight().saturating_sub(1),
            g.total_edge_weight().max(1),
        );
        let hyper_bad = hyper_partition(&hg, k, &impossible, &HyperParams::default()).is_err();
        let gp_bad = gp_partition(&g, k, &impossible, &GpParams::default()).is_err();
        prop_assert_eq!(hyper_bad, gp_bad, "impossible constraints");
        prop_assert!(hyper_bad);
    }
}

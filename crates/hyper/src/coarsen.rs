//! Multilevel coarsening for hypergraphs: heavy-pin-connectivity
//! matching and net contraction.
//!
//! The rating between two nodes is the hMETIS-style *heavy connectivity*
//! score `Σ w(e) / (|e| − 1)` over the nets both pin — the expected
//! bandwidth hidden inside the coarse node if the pair merges. Matching
//! greedily by that rating concentrates multicast fan-out inside coarse
//! nodes, which is exactly what minimises the connectivity any coarse
//! partition can expose (the same argument `gp-core` makes for absorbed
//! edge weight).
//!
//! Contraction re-pins every net through the fine→coarse map, drops
//! pins that collapse together, drops nets left with a single pin
//! (absorbed), and merges nets that end up with the same root and pin
//! set — the standard identical-net collapse that keeps coarse
//! hypergraphs small.

use crate::hypergraph::{Hypergraph, HypergraphBuilder, NetId};
use ppn_graph::prng::{derive_seed, splitmix64, XorShift128Plus};
use ppn_graph::NodeId;
use std::collections::HashMap;

/// Sentinel for "unmatched".
pub const UNMATCHED: u32 = u32::MAX;

/// Nets larger than this are skipped when rating pairs (they contribute
/// almost nothing per pin and make rating quadratic; standard practice).
const RATING_NET_LIMIT: usize = 256;

/// Fixed-point scale for the `w/(|e|−1)` rating, so ties behave
/// deterministically without floats.
const RATING_SCALE: u64 = 256;

/// Greedy heavy-pin-connectivity matching: visit nodes in seeded random
/// order; an unmatched node pairs with the unmatched co-pin of maximum
/// rating (ties to the smaller node id). Returns `mate[v]` (or
/// [`UNMATCHED`]).
pub fn heavy_connectivity_matching(hg: &Hypergraph, seed: u64) -> Vec<u32> {
    let n = hg.num_nodes();
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    XorShift128Plus::new(seed).shuffle(&mut order);
    // sparse scratch: rating per candidate plus the touched list
    let mut rating = vec![0u64; n];
    let mut touched: Vec<u32> = Vec::new();
    for &v in &order {
        if mate[v as usize] != UNMATCHED {
            continue;
        }
        touched.clear();
        for &net in hg.nets_of(NodeId(v)) {
            let pins = hg.pins(NetId(net));
            if pins.len() < 2 || pins.len() > RATING_NET_LIMIT {
                continue;
            }
            let score = hg.net_weight(NetId(net)) * RATING_SCALE / (pins.len() as u64 - 1);
            for &u in pins {
                if u == v || mate[u as usize] != UNMATCHED {
                    continue;
                }
                if rating[u as usize] == 0 {
                    touched.push(u);
                }
                rating[u as usize] += score;
            }
        }
        let mut best: Option<(u64, u32)> = None;
        for &u in &touched {
            let key = (rating[u as usize], u);
            let better = match best {
                None => true,
                // higher rating wins; smaller id breaks ties
                Some((bs, bu)) => key.0 > bs || (key.0 == bs && u < bu),
            };
            if better {
                best = Some(key);
            }
            rating[u as usize] = 0;
        }
        if let Some((_, u)) = best {
            mate[v as usize] = u;
            mate[u as usize] = v;
        }
    }
    mate
}

/// First contraction pass, shared by the optimized and reference paths:
/// merge matched pairs into coarse nodes and fill the fine→coarse map.
fn build_coarse_nodes(
    hg: &Hypergraph,
    mate: &[u32],
    map: &mut [u32],
    b: &mut HypergraphBuilder,
) -> usize {
    let n = hg.num_nodes();
    let mut coarse_nodes = 0usize;
    for v in 0..n {
        if map[v] != u32::MAX {
            continue;
        }
        let m = mate[v];
        let w = if m != UNMATCHED {
            hg.node_weight(NodeId(v as u32)) + hg.node_weight(NodeId(m))
        } else {
            hg.node_weight(NodeId(v as u32))
        };
        let id = b.add_node(w);
        coarse_nodes += 1;
        map[v] = id.0;
        if m != UNMATCHED {
            map[m as usize] = id.0;
        }
    }
    coarse_nodes
}

/// Chain terminator in [`HyperContractScratch::next`].
const NO_NET: u32 = u32::MAX;

/// Reusable working memory for [`contract_with`]: pin-dedup epoch
/// markers, the coarse-pin scratch, and the fingerprint table that
/// replaces the per-net `(root, sorted Vec<u32>)` HashMap key. Held
/// across levels by [`hyper_coarsen`], everything is `clear()`ed with
/// capacity retained.
#[derive(Clone, Debug, Default)]
pub struct HyperContractScratch {
    /// Epoch marker per coarse node: `seen[c] == epoch` iff `c` is a pin
    /// of the net currently being re-pinned. Doubles as the set-equality
    /// probe during bucket verification.
    seen: Vec<u32>,
    /// Current epoch (one per processed net).
    epoch: u32,
    /// Deduplicated coarse pins of the current net, first-occurrence
    /// order (root first).
    pins: Vec<u32>,
    /// Order-independent fingerprint → head of the candidate chain.
    heads: HashMap<u64, u32>,
    /// Next coarse net in the same fingerprint bucket.
    next: Vec<u32>,
}

impl HyperContractScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

#[inline]
fn mix(x: u64) -> u64 {
    let mut s = x;
    splitmix64(&mut s)
}

/// Contract `hg` along a mate array, producing the coarse hypergraph and
/// the fine→coarse map. Output-identical to [`contract_reference`]
/// (property-tested) but the identical-net merge keys on an
/// order-independent fingerprint — root, pin count, and a commutative
/// sum of mixed pin hashes — verified exactly against the bucket's nets
/// with the epoch marker, so no net ever allocates or sorts a `Vec` key.
pub fn contract_with(
    hg: &Hypergraph,
    mate: &[u32],
    scratch: &mut HyperContractScratch,
) -> (Hypergraph, Vec<u32>) {
    let n = hg.num_nodes();
    assert_eq!(mate.len(), n, "mate/hypergraph mismatch");
    let mut map = vec![u32::MAX; n];
    let mut b = HypergraphBuilder::new();
    let cn = build_coarse_nodes(hg, mate, &mut map, &mut b);

    let s = scratch;
    s.seen.clear();
    s.seen.resize(cn, 0);
    s.epoch = 0;
    s.heads.clear();
    s.next.clear();

    let mut coarse_nets: Vec<(u64, Vec<NodeId>)> = Vec::new();
    for e in hg.net_ids() {
        s.epoch += 1;
        // dedup pins through the map, first-occurrence order (root first)
        s.pins.clear();
        for &p in hg.pins(e) {
            let c = map[p as usize];
            if s.seen[c as usize] != s.epoch {
                s.seen[c as usize] = s.epoch;
                s.pins.push(c);
            }
        }
        if s.pins.len() < 2 {
            continue; // absorbed into one coarse node
        }
        let root = s.pins[0];
        // order-independent fingerprint over the non-root pins
        let mut acc = 0u64;
        for &c in &s.pins[1..] {
            acc = acc.wrapping_add(mix(c as u64 ^ 0x9E37_79B9_7F4A_7C15));
        }
        let fp = mix(acc ^ mix(root as u64) ^ ((s.pins.len() as u64) << 48));
        let w = hg.net_weight(e);
        // bucket walk: exact verification against each candidate via the
        // epoch marker (a pin set equals ours iff same root, same length,
        // and every candidate pin was marked by the dedup pass above)
        let mut cand = s.heads.get(&fp).copied().unwrap_or(NO_NET);
        let mut merged = false;
        while cand != NO_NET {
            let (_, ref cpins) = coarse_nets[cand as usize];
            if cpins.len() == s.pins.len()
                && cpins[0].0 == root
                && cpins[1..].iter().all(|p| s.seen[p.index()] == s.epoch)
            {
                coarse_nets[cand as usize].0 += w;
                merged = true;
                break;
            }
            cand = s.next[cand as usize];
        }
        if !merged {
            let idx = coarse_nets.len() as u32;
            coarse_nets.push((w, s.pins.iter().map(|&c| NodeId(c)).collect()));
            let prev = s.heads.insert(fp, idx).unwrap_or(NO_NET);
            s.next.push(prev);
        }
    }
    for (w, pins) in &coarse_nets {
        b.add_net(*w, pins);
    }
    (b.build(), map)
}

/// Contract with a one-shot scratch; multilevel loops hold a
/// [`HyperContractScratch`] and call [`contract_with`] instead.
pub fn contract(hg: &Hypergraph, mate: &[u32]) -> (Hypergraph, Vec<u32>) {
    contract_with(hg, mate, &mut HyperContractScratch::new())
}

/// The original contraction, keyed on `(root, sorted rest)` `Vec` keys —
/// one allocation plus a sort per surviving net. Preserved verbatim as
/// the property-test oracle and perf baseline.
pub fn contract_reference(hg: &Hypergraph, mate: &[u32]) -> (Hypergraph, Vec<u32>) {
    let n = hg.num_nodes();
    assert_eq!(mate.len(), n, "mate/hypergraph mismatch");
    let mut map = vec![u32::MAX; n];
    let mut b = HypergraphBuilder::new();
    let _ = build_coarse_nodes(hg, mate, &mut map, &mut b);

    // re-pin nets; merge nets with identical (root, pin set)
    let mut seen: HashMap<(u32, Vec<u32>), usize> = HashMap::new();
    let mut coarse_nets: Vec<(u64, Vec<NodeId>)> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    for e in hg.net_ids() {
        scratch.clear();
        for &p in hg.pins(e) {
            let c = map[p as usize];
            if !scratch.contains(&c) {
                scratch.push(c);
            }
        }
        if scratch.len() < 2 {
            continue; // absorbed into one coarse node
        }
        let root = scratch[0];
        let mut rest = scratch[1..].to_vec();
        rest.sort_unstable();
        let w = hg.net_weight(e);
        match seen.entry((root, rest)) {
            std::collections::hash_map::Entry::Occupied(slot) => {
                coarse_nets[*slot.get()].0 += w;
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(coarse_nets.len());
                coarse_nets.push((w, scratch.iter().map(|&c| NodeId(c)).collect()));
            }
        }
    }
    for (w, pins) in &coarse_nets {
        b.add_net(*w, pins);
    }
    (b.build(), map)
}

/// One level of the hierarchy.
#[derive(Clone, Debug)]
pub struct HyperLevel {
    /// The finer hypergraph.
    pub fine: Hypergraph,
    /// Fine→coarse node map.
    pub map: Vec<u32>,
}

/// Coarsening hierarchy, finest first.
#[derive(Clone, Debug)]
pub struct HyperHierarchy {
    /// Levels, finest first.
    pub levels: Vec<HyperLevel>,
    coarsest: Hypergraph,
}

impl HyperHierarchy {
    /// The coarsest hypergraph.
    pub fn coarsest(&self) -> &Hypergraph {
        &self.coarsest
    }

    /// Number of hypergraphs (levels + 1).
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Node counts per hypergraph, finest first.
    pub fn size_trace(&self) -> Vec<usize> {
        let mut t: Vec<usize> = self.levels.iter().map(|l| l.fine.num_nodes()).collect();
        t.push(self.coarsest.num_nodes());
        t
    }
}

/// Build a coarsening hierarchy down to `coarsen_to` nodes.
pub fn hyper_coarsen(hg: &Hypergraph, coarsen_to: usize, seed: u64) -> HyperHierarchy {
    let mut levels = Vec::new();
    let mut current = hg.clone();
    let mut scratch = HyperContractScratch::new();
    let mut round = 0u64;
    while current.num_nodes() > coarsen_to {
        let mate = heavy_connectivity_matching(&current, derive_seed(seed, 0x6C + round));
        let pairs = mate.iter().filter(|&&m| m != UNMATCHED).count() / 2;
        let coarse_nodes = current.num_nodes() - pairs;
        if coarse_nodes as f64 > current.num_nodes() as f64 * 0.95 {
            break; // stalled (e.g. one giant net)
        }
        let (coarse, map) = contract_with(&current, &mate, &mut scratch);
        levels.push(HyperLevel { fine: current, map });
        current = coarse;
        round += 1;
    }
    HyperHierarchy {
        levels,
        coarsest: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HyperQuality;
    use ppn_graph::Partition;

    /// Ring of 3-pin nets: node i roots {i, i+1, i+2} (mod n).
    fn ring(n: usize, w: u64) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let ids: Vec<_> = (0..n).map(|_| b.add_node(2)).collect();
        for i in 0..n {
            b.add_net(
                w + (i as u64 % 3),
                &[ids[i], ids[(i + 1) % n], ids[(i + 2) % n]],
            );
        }
        b.build()
    }

    #[test]
    fn matching_is_symmetric_and_uses_shared_nets() {
        let hg = ring(16, 4);
        let mate = heavy_connectivity_matching(&hg, 7);
        for v in 0..16usize {
            let m = mate[v];
            if m != UNMATCHED {
                assert_eq!(mate[m as usize], v as u32, "asymmetric at {v}");
                assert_ne!(m, v as u32);
                // mates must share at least one net
                let shared = hg
                    .nets_of(NodeId(v as u32))
                    .iter()
                    .any(|&e| hg.pins(NetId(e)).contains(&m));
                assert!(shared, "{v} matched to non-co-pin {m}");
            }
        }
        assert!(mate.iter().any(|&m| m != UNMATCHED), "nothing matched");
    }

    #[test]
    fn contract_preserves_node_weight_and_validates() {
        let hg = ring(16, 4);
        let mate = heavy_connectivity_matching(&hg, 3);
        let (coarse, map) = contract(&hg, &mate);
        coarse.validate().unwrap();
        assert_eq!(coarse.total_node_weight(), hg.total_node_weight());
        assert!(coarse.num_nodes() < hg.num_nodes());
        assert!(map.iter().all(|&c| (c as usize) < coarse.num_nodes()));
    }

    #[test]
    fn projected_connectivity_equals_coarse_connectivity() {
        // the hypergraph analogue of "projected cut equals coarse cut":
        // λ of a net only depends on which parts its pins land in, and
        // contraction never separates merged pins
        let hg = ring(12, 5);
        for seed in 0..6 {
            let mate = heavy_connectivity_matching(&hg, seed);
            let (coarse, map) = contract(&hg, &mate);
            let assign: Vec<u32> = (0..coarse.num_nodes() as u32).map(|i| i % 3).collect();
            let pc = Partition::from_assignment(assign, 3).unwrap();
            let pf = pc.project(&map);
            assert_eq!(
                HyperQuality::measure(&coarse, &pc).connectivity_cost,
                HyperQuality::measure(&hg, &pf).connectivity_cost,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn identical_nets_merge_weights() {
        let mut b = HypergraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1)).collect();
        // two parallel nets rooted at 0 over {0,1,2}; after matching
        // (1,2) they both become {c0, c12} and must merge to weight 9
        b.add_net(4, &[n[0], n[1], n[2]]);
        b.add_net(5, &[n[0], n[2], n[1]]);
        b.add_net(2, &[n[2], n[3]]);
        let hg = b.build();
        let mate = vec![UNMATCHED, 2, 1, UNMATCHED];
        let (coarse, _) = contract(&hg, &mate);
        coarse.validate().unwrap();
        assert_eq!(coarse.num_nets(), 2);
        let total: u64 = coarse.net_ids().map(|e| coarse.net_weight(e)).sum();
        assert_eq!(total, 11);
        assert!(coarse.net_ids().any(|e| coarse.net_weight(e) == 9));
    }

    #[test]
    fn absorbed_nets_disappear() {
        let mut b = HypergraphBuilder::new();
        let n: Vec<_> = (0..2).map(|_| b.add_node(1)).collect();
        b.add_net(6, &[n[0], n[1]]);
        let hg = b.build();
        let mate = vec![1, 0];
        let (coarse, map) = contract(&hg, &mate);
        assert_eq!(coarse.num_nodes(), 1);
        assert_eq!(coarse.num_nets(), 0);
        assert_eq!(map, vec![0, 0]);
    }

    #[test]
    fn fingerprint_merge_matches_hashmap_reference() {
        let mut scratch = HyperContractScratch::new();
        for seed in 0..12 {
            let hg = ring(24, 3);
            let mate = heavy_connectivity_matching(&hg, seed);
            let (c_opt, map_opt) = contract_with(&hg, &mate, &mut scratch);
            let (c_ref, map_ref) = contract_reference(&hg, &mate);
            assert_eq!(map_opt, map_ref, "seed {seed}");
            assert_eq!(c_opt, c_ref, "seed {seed}");
        }
    }

    #[test]
    fn fingerprint_merge_handles_parallel_and_permuted_nets() {
        // the identical_nets_merge_weights topology, where equality holds
        // only under set semantics (permuted pin order)
        let mut b = HypergraphBuilder::new();
        let n: Vec<_> = (0..4).map(|_| b.add_node(1)).collect();
        b.add_net(4, &[n[0], n[1], n[2]]);
        b.add_net(5, &[n[0], n[2], n[1]]);
        b.add_net(2, &[n[2], n[3]]);
        let hg = b.build();
        let mate = vec![UNMATCHED, 2, 1, UNMATCHED];
        let (c_opt, map_opt) = contract(&hg, &mate);
        let (c_ref, map_ref) = contract_reference(&hg, &mate);
        assert_eq!(map_opt, map_ref);
        assert_eq!(c_opt, c_ref);
    }

    #[test]
    fn hierarchy_reaches_target_deterministically() {
        let hg = ring(64, 3);
        let a = hyper_coarsen(&hg, 12, 9);
        let b = hyper_coarsen(&hg, 12, 9);
        assert!(a.coarsest().num_nodes() <= 12 || a.depth() == 1);
        assert_eq!(a.size_trace(), b.size_trace());
        assert_eq!(a.coarsest().total_node_weight(), hg.total_node_weight());
        let trace = a.size_trace();
        assert!(trace.windows(2).all(|w| w[1] < w[0]), "{trace:?}");
    }
}

//! Partition quality under the connectivity metric.

use crate::connectivity::{BandwidthMatrix, NetConnectivity};
use crate::hypergraph::Hypergraph;
use ppn_graph::{ConstraintReport, Constraints, Partition};
use serde::{Deserialize, Serialize};

/// Summed node (resource) weight per part.
pub fn part_weights(hg: &Hypergraph, p: &Partition) -> Vec<u64> {
    assert_eq!(hg.num_nodes(), p.len(), "partition/hypergraph mismatch");
    let mut w = vec![0u64; p.k()];
    for v in hg.node_ids() {
        let q = p.part_of(v);
        if q != Partition::UNASSIGNED {
            w[q as usize] += hg.node_weight(v);
        }
    }
    w
}

/// Aggregate quality of a k-way partition of a hypergraph — the
/// connectivity-metric analogue of [`ppn_graph::PartitionQuality`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperQuality {
    /// `Σ w(e)·(λ(e) − 1)` — total boundary traffic under multicast-
    /// aware charging.
    pub connectivity_cost: u64,
    /// Number of nets spanning more than one part.
    pub cut_nets: usize,
    /// Largest pairwise boundary traffic (what `Bmax` bounds).
    pub max_local_bandwidth: u64,
    /// Largest per-part resource usage (what `Rmax` bounds).
    pub max_resource: u64,
    /// Per-part resource usage.
    pub part_resources: Vec<u64>,
    /// Full per-boundary traffic matrix.
    pub traffic: BandwidthMatrix,
}

impl HyperQuality {
    /// Measure `p` on `hg` (fresh scan; hot paths keep a
    /// [`NetConnectivity`] instead).
    pub fn measure(hg: &Hypergraph, p: &Partition) -> Self {
        let s = NetConnectivity::new(hg, p);
        let part_resources = part_weights(hg, p);
        HyperQuality {
            connectivity_cost: s.connectivity_cost(),
            cut_nets: s.cut_nets(),
            max_local_bandwidth: s.traffic().max_local_bandwidth(),
            max_resource: part_resources.iter().copied().max().unwrap_or(0),
            part_resources,
            traffic: s.traffic().clone(),
        }
    }

    /// Lexicographic goodness key (lower is better): violated-constraint
    /// count, violation magnitude, connectivity cost — the same shape as
    /// `PartitionQuality::goodness_key`, with the connectivity objective
    /// in the cut slot.
    pub fn goodness_key(&self, rmax: u64, bmax: u64) -> (u64, u64, u64) {
        let bw_viol = self.traffic.violations(bmax);
        let res_viol: Vec<u64> = self
            .part_resources
            .iter()
            .copied()
            .filter(|&r| r > rmax)
            .collect();
        let count = bw_viol.len() as u64 + res_viol.len() as u64;
        let magnitude =
            self.traffic.violation_magnitude(bmax) + res_viol.iter().map(|r| r - rmax).sum::<u64>();
        (count, magnitude, self.connectivity_cost)
    }

    /// Check against `Rmax`/`Bmax`, producing the same report type the
    /// graph engine emits.
    pub fn check(&self, c: &Constraints) -> ConstraintReport {
        ConstraintReport {
            rmax: c.rmax,
            bmax: c.bmax,
            resource_violations: self
                .part_resources
                .iter()
                .enumerate()
                .filter(|&(_, &r)| r > c.rmax)
                .map(|(i, &r)| (i, r))
                .collect(),
            bandwidth_violations: self.traffic.violations(c.bmax),
        }
    }
}

/// True when `p` satisfies both constraints on `hg` under the
/// connectivity bandwidth model.
pub fn is_feasible(hg: &Hypergraph, p: &Partition, c: &Constraints) -> bool {
    HyperQuality::measure(hg, p).check(c).is_feasible()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;
    use ppn_graph::NodeId;

    fn star() -> Hypergraph {
        // hub 0 (w 50) multicasting w-8 stream to 4 leaves (w 10)
        let mut b = HypergraphBuilder::new();
        let hub = b.add_node(50);
        let leaves: Vec<_> = (0..4).map(|_| b.add_node(10)).collect();
        let mut pins = vec![hub];
        pins.extend(leaves);
        b.add_net(8, &pins);
        b.build()
    }

    #[test]
    fn quality_measures_connectivity_not_pins() {
        let hg = star();
        // hub alone: one boundary, charged once — not once per leaf
        let p = Partition::from_assignment(vec![0, 1, 1, 1, 1], 2).unwrap();
        let q = HyperQuality::measure(&hg, &p);
        assert_eq!(q.connectivity_cost, 8);
        assert_eq!(q.cut_nets, 1);
        assert_eq!(q.max_local_bandwidth, 8);
        assert_eq!(q.max_resource, 50);
        assert_eq!(q.part_resources, vec![50, 40]);
    }

    #[test]
    fn check_reports_violations() {
        let hg = star();
        let p = Partition::from_assignment(vec![0, 1, 1, 1, 1], 2).unwrap();
        let q = HyperQuality::measure(&hg, &p);
        let rep = q.check(&Constraints::new(45, 7));
        assert_eq!(rep.resource_violations, vec![(0, 50)]);
        assert_eq!(rep.bandwidth_violations, vec![(0, 1, 8)]);
        assert!(!rep.is_feasible());
        assert!(is_feasible(&hg, &p, &Constraints::new(50, 8)));
    }

    #[test]
    fn goodness_prefers_feasible() {
        let hg = star();
        let feasible = Partition::from_assignment(vec![0, 1, 1, 1, 1], 2).unwrap();
        let violating = Partition::from_assignment(vec![0, 0, 0, 0, 1], 2).unwrap();
        let qa = HyperQuality::measure(&hg, &feasible);
        let qb = HyperQuality::measure(&hg, &violating);
        assert!(qa.goodness_key(50, 8) < qb.goodness_key(50, 8));
    }

    #[test]
    fn part_weights_skip_unassigned() {
        let hg = star();
        let mut p = Partition::unassigned(5, 2);
        p.assign(NodeId(0), 1);
        assert_eq!(part_weights(&hg, &p), vec![0, 50]);
    }
}

//! The multilevel k-way hypergraph partitioning driver.
//!
//! The same V-cycle shape as `gp_core::cycle`: coarsen with
//! heavy-pin-connectivity matchings, greedy constrained initial
//! partitioning with restarts on the coarsest hypergraph, constrained
//! refinement while projecting back up, and cyclic re-coarsening with a
//! fresh seed while the constraints are still violated. Feasibility and
//! goodness use the connectivity bandwidth model throughout (a cut
//! net's bandwidth charged once per spanned boundary).

use crate::coarsen::{hyper_coarsen, HyperHierarchy};
use crate::hypergraph::Hypergraph;
use crate::initial::{greedy_hyper_initial, HyperInitialOptions};
use crate::metrics::HyperQuality;
use crate::refine::{hyper_refine, HyperRefineOptions};
use ppn_graph::faultpoint::{alloc_fault, fault_point};
use ppn_graph::prng::derive_seed;
use ppn_graph::trace;
use ppn_graph::{Budget, ConstraintReport, Constraints, Degradation, Partition};
use serde::{Deserialize, Serialize};

/// Parameters of [`hyper_partition`], defaults matching `GpParams`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HyperParams {
    /// Coarsening stops at this many nodes.
    pub coarsen_to: usize,
    /// Restarts of the greedy initial partitioning.
    pub initial_restarts: usize,
    /// Refinement sweeps per hierarchy level.
    pub refine_passes: usize,
    /// Re-coarsening cycles before reporting infeasibility.
    pub max_cycles: usize,
    /// Root seed for every stochastic component.
    pub seed: u64,
}

impl Default for HyperParams {
    fn default() -> Self {
        HyperParams {
            coarsen_to: 100,
            initial_restarts: 10,
            refine_passes: 8,
            max_cycles: 10,
            seed: 0xCA77A,
        }
    }
}

impl HyperParams {
    /// Same parameters, different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a successful (feasible) run, or the best attempt of a
/// failed one (via [`HyperInfeasible`]).
#[derive(Clone, Debug)]
pub struct HyperResult {
    /// The k-way partition.
    pub partition: Partition,
    /// Its measured quality.
    pub quality: HyperQuality,
    /// Constraint report at the returned partition.
    pub report: ConstraintReport,
    /// True when both constraints hold.
    pub feasible: bool,
    /// Cycles actually run.
    pub cycles_used: usize,
    /// Set when a [`Budget`] cut the run short and the partition is
    /// best-so-far rather than fully converged.
    pub degraded: Option<Degradation>,
}

/// The constraints could not be met within the cycle budget; carries the
/// best attempt.
#[derive(Clone, Debug)]
pub struct HyperInfeasible {
    /// Best attempt found.
    pub best: HyperResult,
}

impl std::fmt::Display for HyperInfeasible {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hypergraph partitioning: constraints look impossible or need more time ({})",
            self.best.report.summary()
        )
    }
}

impl std::error::Error for HyperInfeasible {}

/// Conservative bytes a coarsening run over `hg` allocates: per level
/// the coarse hypergraph's CSR arrays (≈16 bytes per node and net, 8 per
/// pin, counting the dual), summed over a geometric hierarchy (~2× the
/// finest level).
fn hyper_bytes_estimate(hg: &Hypergraph) -> u64 {
    2 * (hg.num_nodes() as u64 * 16 + hg.num_nets() as u64 * 16 + hg.num_pins() as u64 * 8)
}

fn refine_up(
    hier: &HyperHierarchy,
    mut p: Partition,
    c: &Constraints,
    params: &HyperParams,
    stream: u64,
    budget: &Budget,
    degraded: &mut Option<Degradation>,
) -> Partition {
    for (i, level) in hier.levels.iter().enumerate().rev() {
        let _lvl = trace::span("hyper", "level", i as i64);
        p = p.project(&level.map);
        // Projection must continue to the finest hypergraph even after
        // the deadline — only the (optional) refinement work is skipped.
        trace::counter("hyper", "budget_checkpoint", 1);
        if !budget.is_unlimited()
            && (budget.expired() || !budget.admits_work(level.fine.num_pins() as u64))
        {
            degraded.get_or_insert_with(|| {
                Degradation::new(
                    "refine",
                    format!("deadline expired; projected level {i} without refinement"),
                )
            });
            continue;
        }
        hyper_refine(
            &level.fine,
            &mut p,
            c,
            &HyperRefineOptions {
                max_passes: budget.clamp_refine_passes(params.refine_passes),
                seed: derive_seed(params.seed, stream ^ (i as u64) << 8),
                protect_nonempty: true,
            },
        );
    }
    p
}

/// Run the full multilevel hypergraph partitioner. Returns `Ok` when the
/// constraints are met, `Err(HyperInfeasible)` with the best attempt
/// otherwise.
pub fn hyper_partition(
    hg: &Hypergraph,
    k: usize,
    c: &Constraints,
    params: &HyperParams,
) -> Result<HyperResult, Box<HyperInfeasible>> {
    hyper_partition_budgeted(hg, k, c, params, &Budget::unlimited())
}

/// [`hyper_partition`] under a cooperative [`Budget`]: checks at cycle
/// and level boundaries, returns best-so-far (marked `degraded`) once
/// the deadline passes. An unlimited budget is bit-identical to
/// [`hyper_partition`].
pub fn hyper_partition_budgeted(
    hg: &Hypergraph,
    k: usize,
    c: &Constraints,
    params: &HyperParams,
    budget: &Budget,
) -> Result<HyperResult, Box<HyperInfeasible>> {
    assert!(k >= 1, "k must be at least 1");
    assert!(hg.num_nodes() > 0, "cannot partition an empty hypergraph");

    let _run = trace::span("hyper", "partition", hg.num_nodes() as i64);
    let mut best: Option<((u64, u64, u64), Partition)> = None;
    let mut cycles_used = 0;
    let mut degraded: Option<Degradation> = None;
    // reduced-footprint budgets cut the transient working set of the
    // greedy initial search (one candidate partition per restart)
    let initial_restarts = if budget.reduced_footprint() {
        params.initial_restarts.min(2)
    } else {
        params.initial_restarts
    };
    for cycle in 0..params.max_cycles.max(1) {
        let _cyc = trace::span("hyper", "cycle", cycle as i64);
        trace::counter("hyper", "budget_checkpoint", 1);
        if cycle > 0 && !budget.is_unlimited() && budget.expired() {
            degraded.get_or_insert_with(|| {
                Degradation::new("cycle", format!("deadline expired after {cycle} cycle(s)"))
            });
            break;
        }
        cycles_used = cycle + 1;
        let cycle_seed = derive_seed(params.seed, 0x4C1C + cycle as u64);

        // A coarsen + initial round over this hypergraph is at least
        // pin-linear in time and allocates the whole hierarchy (~2× the
        // finest level) in bytes; with nothing banked yet fall back to a
        // contiguous fill rather than blowing through either budget —
        // with a best already banked, keep it and stop re-coarsening.
        let mem_blocked = alloc_fault("hyper", "coarsen")
            || (budget.memory_ledger().is_some() && !budget.admits_bytes(hyper_bytes_estimate(hg)));
        if mem_blocked
            || (best.is_none()
                && !budget.is_unlimited()
                && (budget.expired() || !budget.admits_work(hg.num_pins() as u64)))
        {
            let cause = if mem_blocked && !budget.cancelled() {
                "memory budget cannot fit the hierarchy"
            } else {
                "deadline expired"
            };
            if best.is_some() {
                degraded.get_or_insert_with(|| {
                    Degradation::new("cycle", format!("{cause}; stopping after {cycle} cycle(s)"))
                });
                break;
            }
            degraded.get_or_insert_with(|| {
                Degradation::new(
                    "initial",
                    format!("{cause}; contiguous fill over {} nodes", hg.num_nodes()),
                )
            });
            let p = Partition::contiguous_balanced(hg.node_weights(), k);
            let goodness = HyperQuality::measure(hg, &p).goodness_key(c.rmax, c.bmax);
            best = Some((goodness, p));
            break;
        }

        fault_point("hyper", "coarsen");
        let sp = trace::span("hyper", "coarsen", cycle as i64);
        let hier = hyper_coarsen(hg, params.coarsen_to, cycle_seed);
        drop(sp);
        fault_point("hyper", "initial");
        let sp = trace::span("hyper", "initial", cycle as i64);
        let p0 = greedy_hyper_initial(
            hier.coarsest(),
            k,
            c,
            &HyperInitialOptions {
                restarts: initial_restarts,
                repair_passes: params.refine_passes,
                seed: cycle_seed,
            },
        );
        drop(sp);
        fault_point("hyper", "refine");
        let sp = trace::span("hyper", "refine", cycle as i64);
        let p_top = refine_up(
            &hier,
            p0,
            c,
            params,
            derive_seed(cycle_seed, 0x70),
            budget,
            &mut degraded,
        );
        drop(sp);
        let goodness = HyperQuality::measure(hg, &p_top).goodness_key(c.rmax, c.bmax);
        let is_better = best.as_ref().map(|(bg, _)| goodness < *bg).unwrap_or(true);
        if is_better {
            best = Some((goodness, p_top));
        }
        if best.as_ref().map(|(g, _)| g.0 == 0).unwrap_or(false) {
            break;
        }
    }

    let (_, partition) = best.expect("at least one cycle ran");
    let quality = HyperQuality::measure(hg, &partition);
    let report = quality.check(c);
    let feasible = report.is_feasible();
    let result = HyperResult {
        partition,
        quality,
        report,
        feasible,
        cycles_used,
        degraded,
    };
    if feasible {
        Ok(result)
    } else {
        Err(Box::new(HyperInfeasible { best: result }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;

    /// Four multicast stars (hub + 3 dedicated consumers each) with
    /// light bridge nets between consecutive stars.
    fn four_stars() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let mut hubs = Vec::new();
        let mut all = Vec::new();
        for _ in 0..4 {
            let hub = b.add_node(30);
            let cons: Vec<_> = (0..3).map(|_| b.add_node(15)).collect();
            let mut pins = vec![hub];
            pins.extend(cons.iter().copied());
            b.add_net(10, &pins);
            hubs.push(hub);
            all.push(pins);
        }
        for i in 0..4 {
            b.add_net(2, &[all[i][3], hubs[(i + 1) % 4]]);
        }
        b.build()
    }

    #[test]
    fn feasible_instance_is_solved() {
        let hg = four_stars();
        // one star per part: cost = 4 bridge nets cut
        let c = Constraints::new(90, 15);
        let r = hyper_partition(&hg, 4, &c, &HyperParams::default()).expect("feasible");
        assert!(r.feasible);
        assert!(r.partition.is_complete());
        assert!(r.quality.max_resource <= 90);
        assert!(r.quality.max_local_bandwidth <= 15);
    }

    #[test]
    fn impossible_instance_reports_infeasible() {
        let hg = four_stars();
        let c = Constraints::new(10, 1000); // below the heaviest node
        let err = hyper_partition(&hg, 4, &c, &HyperParams::default()).unwrap_err();
        assert!(!err.best.feasible);
        assert!(err.to_string().contains("impossible"));
        assert!(err.best.partition.is_complete());
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = four_stars();
        let c = Constraints::new(90, 15);
        let a = hyper_partition(&hg, 4, &c, &HyperParams::default()).unwrap();
        let b = hyper_partition(&hg, 4, &c, &HyperParams::default()).unwrap();
        assert_eq!(a.partition, b.partition);
    }

    #[test]
    fn early_exit_on_feasibility() {
        let hg = four_stars();
        let c = Constraints::new(500, 500);
        let r = hyper_partition(&hg, 2, &c, &HyperParams::default()).unwrap();
        assert_eq!(r.cycles_used, 1);
    }

    #[test]
    fn unlimited_budget_is_bit_identical() {
        let hg = four_stars();
        let c = Constraints::new(90, 15);
        let plain = hyper_partition(&hg, 4, &c, &HyperParams::default()).unwrap();
        let budgeted =
            hyper_partition_budgeted(&hg, 4, &c, &HyperParams::default(), &Budget::unlimited())
                .unwrap();
        assert_eq!(plain.partition, budgeted.partition);
        assert!(budgeted.degraded.is_none());
    }

    #[test]
    fn expired_deadline_degrades_but_stays_complete() {
        let hg = four_stars();
        let c = Constraints::new(90, 15);
        let budget = Budget::unlimited().with_deadline(std::time::Duration::ZERO);
        let r = match hyper_partition_budgeted(&hg, 4, &c, &HyperParams::default(), &budget) {
            Ok(r) => r,
            Err(e) => e.best.clone(),
        };
        assert!(r.partition.is_complete());
        assert_eq!(r.partition.k(), 4);
        let d = r
            .degraded
            .expect("zero deadline must mark the outcome degraded");
        assert_eq!(d.phase, "initial");
    }

    #[test]
    fn large_instance_exercises_hierarchy() {
        // 64 stars of 4 nodes each = 256 nodes > coarsen_to
        let mut b = HypergraphBuilder::new();
        let mut prev_consumer = None;
        for _ in 0..64 {
            let hub = b.add_node(8);
            let cons: Vec<_> = (0..3).map(|_| b.add_node(4)).collect();
            let mut pins = vec![hub];
            pins.extend(cons.iter().copied());
            b.add_net(6, &pins);
            if let Some(pc) = prev_consumer {
                b.add_net(1, &[pc, hub]);
            }
            prev_consumer = Some(cons[2]);
        }
        let hg = b.build();
        let total = hg.total_node_weight();
        let c = Constraints::new(total / 4 + total / 8, 60);
        let r = match hyper_partition(&hg, 4, &c, &HyperParams::default()) {
            Ok(r) => r,
            Err(e) => e.best.clone(),
        };
        assert!(r.partition.is_complete());
        assert!(
            r.feasible,
            "star chain should partition feasibly: {:?}",
            r.report
        );
    }
}

//! Greedy resource-bounded initial partitioning on the coarsest
//! hypergraph, with restarts.
//!
//! The same shape as `gp_core::initial`: grow each part from a seed node
//! by absorbing the unassigned node with the heaviest *net connection*
//! into the part (summed bandwidth of nets with at least one pin already
//! inside, each net counted once) while `Rmax` holds; sweep leftovers
//! best-fit; overflow into the freest part when nothing fits; repair
//! with constrained refinement. Restarts (first from the heaviest node,
//! then from random seeds) are compared with the goodness order.

use crate::hypergraph::{Hypergraph, NetId};
use crate::metrics::HyperQuality;
use crate::refine::{hyper_refine, HyperRefineOptions};
use ppn_graph::prng::{derive_seed, XorShift128Plus};
use ppn_graph::{Constraints, NodeId, Partition};

/// Options for [`greedy_hyper_initial`].
#[derive(Clone, Debug)]
pub struct HyperInitialOptions {
    /// Number of restarts.
    pub restarts: usize,
    /// Refinement repair passes after the greedy allocation.
    pub repair_passes: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for HyperInitialOptions {
    fn default() -> Self {
        HyperInitialOptions {
            restarts: 10,
            repair_passes: 8,
            seed: 77,
        }
    }
}

/// Assign `v` to the part being grown and propagate gains: the first
/// pin a net places in the part adds its weight to every still-
/// unassigned pin of that net (the frontier). O(pins of v's first-time
/// nets); later pins of the same net cost O(1).
#[allow(clippy::too_many_arguments)]
fn absorb(
    hg: &Hypergraph,
    p: &mut Partition,
    v: NodeId,
    part: u32,
    part_weight: &mut [u64],
    net_in_part: &mut [u32],
    touched_nets: &mut Vec<u32>,
    gain: &mut [u64],
    frontier: &mut Vec<u32>,
) {
    p.assign(v, part);
    part_weight[part as usize] += hg.node_weight(v);
    for &e in hg.nets_of(v) {
        if net_in_part[e as usize] == 0 {
            touched_nets.push(e);
            let w = hg.net_weight(NetId(e));
            for &pin in hg.pins(NetId(e)) {
                if !p.is_assigned(NodeId(pin)) {
                    if gain[pin as usize] == 0 {
                        frontier.push(pin);
                    }
                    gain[pin as usize] += w;
                }
            }
        }
        net_in_part[e as usize] += 1;
    }
}

/// One greedy allocation from a given seed node.
fn grow_from(hg: &Hypergraph, k: usize, c: &Constraints, first: NodeId) -> Partition {
    let n = hg.num_nodes();
    let mut p = Partition::unassigned(n, k);
    let mut part_weight = vec![0u64; k];
    // per-part scratch, cleared between parts via the touched lists:
    // pins each net already has inside the growing part, the gain of
    // every candidate (summed weight of its nets touching the part),
    // and the frontier of candidates with non-zero gain
    let mut net_in_part = vec![0u32; hg.num_nets()];
    let mut touched_nets: Vec<u32> = Vec::new();
    let mut gain = vec![0u64; n];
    let mut frontier: Vec<u32> = Vec::new();

    let mut by_weight: Vec<NodeId> = hg.node_ids().collect();
    by_weight.sort_by_key(|&v| std::cmp::Reverse((hg.node_weight(v), std::cmp::Reverse(v.0))));

    let mut next_seed = Some(first);
    for part in 0..k as u32 {
        for &e in &touched_nets {
            net_in_part[e as usize] = 0;
        }
        touched_nets.clear();
        for &u in &frontier {
            gain[u as usize] = 0;
        }
        frontier.clear();
        let seed_node = match next_seed.take().filter(|&v| !p.is_assigned(v)) {
            Some(v) => Some(v),
            None => by_weight.iter().copied().find(|&v| !p.is_assigned(v)),
        };
        let Some(seed_node) = seed_node else { break };
        absorb(
            hg,
            &mut p,
            seed_node,
            part,
            &mut part_weight,
            &mut net_in_part,
            &mut touched_nets,
            &mut gain,
            &mut frontier,
        );

        // absorb the heaviest-connected unassigned node while Rmax holds
        loop {
            frontier.retain(|&u| !p.is_assigned(NodeId(u)));
            let mut best: Option<(u64, u32)> = None;
            for &u in &frontier {
                let g = gain[u as usize];
                match best {
                    Some((bw, bu)) if (bw, std::cmp::Reverse(bu)) >= (g, std::cmp::Reverse(u)) => {}
                    _ => best = Some((g, u)),
                }
            }
            let Some((_, u)) = best else { break };
            let u = NodeId(u);
            if part_weight[part as usize] + hg.node_weight(u) > c.rmax {
                break; // stop growing this part at Rmax
            }
            absorb(
                hg,
                &mut p,
                u,
                part,
                &mut part_weight,
                &mut net_in_part,
                &mut touched_nets,
                &mut gain,
                &mut frontier,
            );
        }
    }

    // best-fit sweep for leftovers (largest free space first)
    for v in p.unassigned_nodes() {
        let wv = hg.node_weight(v);
        let fitting = (0..k)
            .filter(|&q| part_weight[q] + wv <= c.rmax)
            .max_by_key(|&q| (c.rmax - part_weight[q], std::cmp::Reverse(q)));
        let target = fitting.unwrap_or_else(|| {
            (0..k)
                .max_by_key(|&q| (c.rmax.saturating_sub(part_weight[q]), std::cmp::Reverse(q)))
                .unwrap()
        });
        p.assign(v, target as u32);
        part_weight[target] += wv;
    }
    debug_assert!(p.is_complete());
    p
}

/// Greedy initial partitioning with restarts; returns the best
/// partition under the goodness order `(violation count, magnitude,
/// connectivity cost, restart index)`.
pub fn greedy_hyper_initial(
    hg: &Hypergraph,
    k: usize,
    c: &Constraints,
    opts: &HyperInitialOptions,
) -> Partition {
    assert!(k >= 1);
    assert!(hg.num_nodes() > 0, "cannot partition an empty hypergraph");
    let restarts = opts.restarts.max(1);
    let mut best: Option<((u64, u64, u64, usize), Partition)> = None;
    for r in 0..restarts {
        let seed = derive_seed(opts.seed, r as u64);
        let first = if r == 0 {
            hg.node_ids()
                .max_by_key(|&v| (hg.node_weight(v), std::cmp::Reverse(v.0)))
                .expect("non-empty hypergraph")
        } else {
            let mut rng = XorShift128Plus::new(seed);
            NodeId::from_index(rng.next_below(hg.num_nodes()))
        };
        let mut p = grow_from(hg, k, c, first);
        hyper_refine(
            hg,
            &mut p,
            c,
            &HyperRefineOptions {
                max_passes: opts.repair_passes,
                seed,
                protect_nonempty: true,
            },
        );
        let (count, magnitude, cost) = HyperQuality::measure(hg, &p).goodness_key(c.rmax, c.bmax);
        let key = (count, magnitude, cost, r);
        if best.as_ref().map(|(bk, _)| key < *bk).unwrap_or(true) {
            best = Some((key, p));
        }
    }
    best.expect("at least one restart").1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;
    use crate::metrics::is_feasible;

    /// Four 3-pin cluster nets bridged by light 2-pin nets — the natural
    /// 4-way split cuts only the bridges.
    fn clusters() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<_> = (0..12)
            .map(|i| b.add_node(20 + (i as u64 * 7) % 30))
            .collect();
        for c in 0..4 {
            let base = c * 3;
            b.add_net(12, &[n[base], n[base + 1], n[base + 2]]);
        }
        for c in 0..3 {
            b.add_net(3, &[n[c * 3 + 2], n[(c + 1) * 3]]);
        }
        b.build()
    }

    #[test]
    fn produces_complete_partition() {
        let hg = clusters();
        let c = Constraints::new(120, 30);
        let p = greedy_hyper_initial(&hg, 4, &c, &HyperInitialOptions::default());
        assert!(p.is_complete());
        assert_eq!(p.k(), 4);
    }

    #[test]
    fn respects_rmax_when_feasible() {
        let hg = clusters();
        let c = Constraints::new(150, 100);
        let p = greedy_hyper_initial(&hg, 4, &c, &HyperInitialOptions::default());
        assert!(is_feasible(&hg, &p, &c));
    }

    #[test]
    fn overflows_gracefully_when_infeasible() {
        let hg = clusters();
        let c = Constraints::new(10, 100); // below the heaviest node
        let p = greedy_hyper_initial(&hg, 4, &c, &HyperInitialOptions::default());
        assert!(
            p.is_complete(),
            "overflow path must still assign everything"
        );
    }

    #[test]
    fn single_part_takes_everything() {
        let hg = clusters();
        let c = Constraints::unconstrained();
        let p = greedy_hyper_initial(&hg, 1, &c, &HyperInitialOptions::default());
        assert!(p.assignment().iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = clusters();
        let c = Constraints::new(130, 40);
        let a = greedy_hyper_initial(&hg, 4, &c, &HyperInitialOptions::default());
        let b = greedy_hyper_initial(&hg, 4, &c, &HyperInitialOptions::default());
        assert_eq!(a, b);
    }
}

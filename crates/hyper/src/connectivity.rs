//! Incremental connectivity tracking — the hypergraph analogue of
//! [`ppn_graph::CutMatrix`] + [`ppn_graph::Boundary`].
//!
//! For a k-way partition, each net `e` has a *span* — the set of parts
//! holding at least one of its pins — of size λ(e). The tracker
//! maintains, per net, the part-pin counts (`counts[e][q]` pins of `e`
//! in part `q`), and from them three aggregates the refinement hot path
//! reads in O(1):
//!
//! * **cut nets** — nets with λ ≥ 2;
//! * **connectivity cost** — `Σ w(e)·(λ(e) − 1)`, the objective;
//! * **per-boundary traffic** — a K×K matrix charging each net's
//!   bandwidth once per spanned boundary: `w(e)` on the pair
//!   `(part(root(e)), q)` for every other spanned part `q`. A multicast
//!   stream leaves its producer's FPGA once per destination FPGA, not
//!   once per consumer, so this is what `Bmax` must bound. The matrix
//!   keeps a running violation excess against a tracked `Bmax`, exactly
//!   like `CutMatrix::track_bmax`.
//!
//! Applying a move costs O(Σ_{e ∋ v} k) — each incident net's count row
//! is touched in two entries and its span contribution re-charged; no
//! other net is visited.

use crate::hypergraph::{Hypergraph, NetId};
use ppn_graph::{NodeId, Partition};
use serde::{Deserialize, Serialize};

/// Symmetric K×K per-boundary traffic matrix with an incrementally
/// maintained total and violation excess against a tracked `Bmax`
/// (mirrors [`ppn_graph::CutMatrix`]; equality ignores the tracked
/// threshold).
#[derive(Clone, Debug, Eq, Serialize, Deserialize)]
pub struct BandwidthMatrix {
    k: usize,
    data: Vec<u64>,
    total: u64,
    tracked_bmax: u64,
    excess: u64,
}

impl PartialEq for BandwidthMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k && self.data == other.data
    }
}

impl BandwidthMatrix {
    /// Zero matrix for `k` parts.
    pub fn zero(k: usize) -> Self {
        BandwidthMatrix {
            k,
            data: vec![0; k * k],
            total: 0,
            tracked_bmax: u64::MAX,
            excess: 0,
        }
    }

    /// Number of parts.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Traffic between parts `a` and `b` (symmetric, zero diagonal).
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> u64 {
        self.data[a * self.k + b]
    }

    /// Summed traffic over unordered pairs (equals the connectivity
    /// cost of the tracked hypergraph).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Track bandwidth excess against `bmax` from now on (O(k²) rebase,
    /// O(1) per subsequent pair change).
    pub fn track_bmax(&mut self, bmax: u64) {
        self.tracked_bmax = bmax;
        let mut e = 0;
        for a in 0..self.k {
            for b in (a + 1)..self.k {
                e += self.get(a, b).saturating_sub(bmax);
            }
        }
        self.excess = e;
    }

    /// The tracked `Bmax` (`u64::MAX` when never set).
    #[inline]
    pub fn tracked_bmax(&self) -> u64 {
        self.tracked_bmax
    }

    /// Incrementally-maintained `Σ (traffic − bmax).max(0)` over pairs.
    #[inline]
    pub fn tracked_excess(&self) -> u64 {
        self.excess
    }

    /// Largest pairwise traffic.
    pub fn max_local_bandwidth(&self) -> u64 {
        let mut best = 0;
        for a in 0..self.k {
            for b in (a + 1)..self.k {
                best = best.max(self.get(a, b));
            }
        }
        best
    }

    /// Pairs exceeding `bmax`, as `(a, b, traffic)`.
    pub fn violations(&self, bmax: u64) -> Vec<(usize, usize, u64)> {
        let mut v = Vec::new();
        for a in 0..self.k {
            for b in (a + 1)..self.k {
                let t = self.get(a, b);
                if t > bmax {
                    v.push((a, b, t));
                }
            }
        }
        v
    }

    /// Sum of pair excesses over `bmax`; O(1) for the tracked threshold.
    pub fn violation_magnitude(&self, bmax: u64) -> u64 {
        if bmax == self.tracked_bmax {
            return self.excess;
        }
        self.violations(bmax)
            .into_iter()
            .map(|(_, _, t)| t - bmax)
            .sum()
    }

    #[inline]
    fn add(&mut self, a: usize, b: usize, w: u64) {
        if a == b || w == 0 {
            return;
        }
        let cur = self.data[a * self.k + b];
        let new = cur + w;
        self.excess +=
            new.saturating_sub(self.tracked_bmax) - cur.saturating_sub(self.tracked_bmax);
        self.total += w;
        self.data[a * self.k + b] = new;
        self.data[b * self.k + a] = new;
    }

    #[inline]
    fn sub(&mut self, a: usize, b: usize, w: u64) {
        if a == b || w == 0 {
            return;
        }
        let cur = self.data[a * self.k + b];
        let new = cur - w;
        self.excess -=
            cur.saturating_sub(self.tracked_bmax) - new.saturating_sub(self.tracked_bmax);
        self.total -= w;
        self.data[a * self.k + b] = new;
        self.data[b * self.k + a] = new;
    }
}

/// Incrementally-maintained net connectivity state for a complete
/// partition of a hypergraph.
#[derive(Clone, Debug)]
pub struct NetConnectivity {
    k: usize,
    /// `counts[e * k + q]` — pins of net `e` in part `q`.
    counts: Vec<u32>,
    /// Span size λ(e) per net.
    lambda: Vec<u32>,
    /// Current part of each net's root pin.
    root_part: Vec<u32>,
    /// `Σ w(e)·(λ(e) − 1)`, maintained incrementally.
    conn_cost: u64,
    /// Number of nets with λ ≥ 2.
    cut_nets: usize,
    /// Per-boundary traffic (root part → each other spanned part).
    bw: BandwidthMatrix,
}

impl NetConnectivity {
    /// Build the tracker for a complete partition.
    pub fn new(hg: &Hypergraph, p: &Partition) -> Self {
        assert_eq!(hg.num_nodes(), p.len(), "partition/hypergraph mismatch");
        assert!(p.is_complete(), "connectivity needs a complete partition");
        let k = p.k();
        let m = hg.num_nets();
        let mut s = NetConnectivity {
            k,
            counts: vec![0; m * k],
            lambda: vec![0; m],
            root_part: vec![0; m],
            conn_cost: 0,
            cut_nets: 0,
            bw: BandwidthMatrix::zero(k),
        };
        for e in hg.net_ids() {
            let row = &mut s.counts[e.index() * k..(e.index() + 1) * k];
            for &pin in hg.pins(e) {
                let q = p.part_of(NodeId(pin)) as usize;
                if row[q] == 0 {
                    s.lambda[e.index()] += 1;
                }
                row[q] += 1;
            }
            let r = p.part_of(hg.root(e));
            s.root_part[e.index()] = r;
            let w = hg.net_weight(e);
            let lam = s.lambda[e.index()];
            s.conn_cost += w * (lam as u64 - 1);
            if lam >= 2 {
                s.cut_nets += 1;
            }
            for (q, &c) in row.iter().enumerate() {
                if c > 0 && q != r as usize {
                    s.bw.add(r as usize, q, w);
                }
            }
        }
        s
    }

    /// Number of parts.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Span size λ of net `e`.
    #[inline]
    pub fn lambda(&self, e: NetId) -> u32 {
        self.lambda[e.index()]
    }

    /// True when net `e` spans more than one part.
    #[inline]
    pub fn is_cut(&self, e: NetId) -> bool {
        self.lambda[e.index()] >= 2
    }

    /// Pins of net `e` in part `q`.
    #[inline]
    pub fn pin_count(&self, e: NetId, q: usize) -> u32 {
        self.counts[e.index() * self.k + q]
    }

    /// `Σ w(e)·(λ(e) − 1)` — the connectivity-(λ−1) objective. O(1).
    #[inline]
    pub fn connectivity_cost(&self) -> u64 {
        self.conn_cost
    }

    /// Number of nets crossing parts. O(1).
    #[inline]
    pub fn cut_nets(&self) -> usize {
        self.cut_nets
    }

    /// The per-boundary traffic matrix.
    #[inline]
    pub fn traffic(&self) -> &BandwidthMatrix {
        &self.bw
    }

    /// Track bandwidth violations against `bmax` (see
    /// [`BandwidthMatrix::track_bmax`]).
    pub fn track_bmax(&mut self, bmax: u64) {
        self.bw.track_bmax(bmax);
    }

    /// Incrementally-maintained bandwidth excess against the tracked
    /// `Bmax`. O(1).
    #[inline]
    pub fn tracked_excess(&self) -> u64 {
        self.bw.tracked_excess()
    }

    /// Apply the move `v: from → to`. Partition entries are not read —
    /// the tracker is self-contained — so callers may rewrite `p` before
    /// or after. Cost: O(nets(v) · k).
    pub fn apply_move(&mut self, hg: &Hypergraph, v: NodeId, from: u32, to: u32) {
        if from == to {
            return;
        }
        let k = self.k;
        let (f, t) = (from as usize, to as usize);
        for &net in hg.nets_of(v) {
            let e = net as usize;
            let w = hg.net_weight(NetId(net));
            // 1. retract the net's boundary charges under the old span/root
            let old_root = self.root_part[e] as usize;
            for q in 0..k {
                if self.counts[e * k + q] > 0 && q != old_root {
                    self.bw.sub(old_root, q, w);
                }
            }
            // 2. shift one pin, maintaining λ / cost / cut-net aggregates
            let row = &mut self.counts[e * k..(e + 1) * k];
            row[f] -= 1;
            if row[f] == 0 {
                self.lambda[e] -= 1;
                self.conn_cost -= w;
                if self.lambda[e] == 1 {
                    self.cut_nets -= 1;
                }
            }
            if row[t] == 0 {
                self.lambda[e] += 1;
                self.conn_cost += w;
                if self.lambda[e] == 2 {
                    self.cut_nets += 1;
                }
            }
            row[t] += 1;
            // 3. the root pin carries the charging origin with it
            if hg.root(NetId(net)) == v {
                self.root_part[e] = to;
            }
            // 4. recharge under the new span/root
            let r = self.root_part[e] as usize;
            for q in 0..k {
                if self.counts[e * k + q] > 0 && q != r {
                    self.bw.add(r, q, w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;

    /// 5 nodes; net A = {0,1,2,3} w 10 (root 0), net B = {3,4} w 4.
    fn fixture() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<_> = (0..5).map(|_| b.add_node(10)).collect();
        b.add_net(10, &[n[0], n[1], n[2], n[3]]);
        b.add_net(4, &[n[3], n[4]]);
        b.build()
    }

    fn assert_matches_fresh(s: &NetConnectivity, hg: &Hypergraph, p: &Partition) {
        let fresh = NetConnectivity::new(hg, p);
        assert_eq!(s.conn_cost, fresh.conn_cost, "conn cost");
        assert_eq!(s.cut_nets, fresh.cut_nets, "cut nets");
        assert_eq!(s.lambda, fresh.lambda, "lambdas");
        assert_eq!(s.counts, fresh.counts, "counts");
        assert_eq!(s.root_part, fresh.root_part, "roots");
        assert_eq!(s.bw, fresh.bw, "traffic matrices");
        assert_eq!(
            s.bw.tracked_excess(),
            fresh.bw.violation_magnitude(s.bw.tracked_bmax()),
            "tracked excess"
        );
    }

    #[test]
    fn fresh_construction_counts_spans() {
        let hg = fixture();
        // parts: {0,1} {2,3} {4} — net A spans 2 parts, net B spans 2
        let p = Partition::from_assignment(vec![0, 0, 1, 1, 2], 3).unwrap();
        let s = NetConnectivity::new(&hg, &p);
        assert_eq!(s.lambda(NetId(0)), 2);
        assert_eq!(s.lambda(NetId(1)), 2);
        assert_eq!(s.cut_nets(), 2);
        // conn cost = 10·1 + 4·1
        assert_eq!(s.connectivity_cost(), 14);
        // net A charged (0,1) once: 10; net B root in part 1 → (1,2): 4
        assert_eq!(s.traffic().get(0, 1), 10);
        assert_eq!(s.traffic().get(1, 2), 4);
        assert_eq!(s.traffic().total(), 14);
    }

    #[test]
    fn multicast_charged_once_per_boundary() {
        let hg = fixture();
        // spread net A's consumers over three parts: λ = 3, but each
        // boundary from the root's part is charged exactly once
        let p = Partition::from_assignment(vec![0, 1, 2, 2, 2], 3).unwrap();
        let s = NetConnectivity::new(&hg, &p);
        assert_eq!(s.lambda(NetId(0)), 3);
        assert_eq!(s.connectivity_cost(), 10 * 2);
        assert_eq!(s.traffic().get(0, 1), 10);
        assert_eq!(s.traffic().get(0, 2), 10);
        assert_eq!(s.traffic().get(1, 2), 0, "no charge between consumer parts");
        assert_eq!(s.traffic().max_local_bandwidth(), 10);
    }

    #[test]
    fn uncut_net_contributes_nothing() {
        let hg = fixture();
        let p = Partition::from_assignment(vec![0, 0, 0, 0, 0], 2).unwrap();
        let s = NetConnectivity::new(&hg, &p);
        assert_eq!(s.connectivity_cost(), 0);
        assert_eq!(s.cut_nets(), 0);
        assert_eq!(s.traffic().total(), 0);
    }

    #[test]
    fn moves_match_fresh_construction() {
        let hg = fixture();
        let mut p = Partition::from_assignment(vec![0, 0, 1, 1, 2], 3).unwrap();
        let mut s = NetConnectivity::new(&hg, &p);
        s.track_bmax(6);
        // includes a root move (node 0 is net A's root, node 3 is net B's)
        for (v, to) in [(2u32, 0u32), (0, 1), (3, 2), (0, 0), (4, 0), (3, 1)] {
            let from = p.part_of(NodeId(v));
            s.apply_move(&hg, NodeId(v), from, to);
            p.assign(NodeId(v), to);
            assert_matches_fresh(&s, &hg, &p);
        }
    }

    #[test]
    fn conn_cost_equals_traffic_total_always() {
        let hg = fixture();
        let mut p = Partition::from_assignment(vec![0, 1, 2, 0, 1], 3).unwrap();
        let mut s = NetConnectivity::new(&hg, &p);
        for (v, to) in [(1u32, 0u32), (2, 1), (4, 2), (0, 2)] {
            let from = p.part_of(NodeId(v));
            s.apply_move(&hg, NodeId(v), from, to);
            p.assign(NodeId(v), to);
            assert_eq!(s.connectivity_cost(), s.traffic().total());
        }
    }

    #[test]
    fn tracked_excess_matches_scan() {
        let hg = fixture();
        let p = Partition::from_assignment(vec![0, 1, 2, 2, 2], 3).unwrap();
        let mut s = NetConnectivity::new(&hg, &p);
        s.track_bmax(4);
        // pairs (0,1) = 10 and (0,2) = 10 each exceed 4 by 6
        assert_eq!(s.tracked_excess(), 12);
        assert_eq!(s.traffic().violation_magnitude(4), 12);
        assert_eq!(s.traffic().violations(4).len(), 2);
    }
}

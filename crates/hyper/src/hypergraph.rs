//! CSR-style incidence hypergraph.
//!
//! A hypergraph generalises the partitioning graph: a *net* (hyperedge)
//! connects an arbitrary set of *pins* (nodes). For process networks a
//! net is one FIFO channel together with every consumer of its token
//! stream — the producer is the net's first pin (its *root*), the
//! consumers follow. Modelling a multicast stream as one net is what
//! lets the connectivity-(λ−1) objective charge its bandwidth once per
//! spanned FPGA boundary instead of once per consumer, which is how a
//! real multi-FPGA link is consumed.
//!
//! The storage mirrors [`ppn_graph::Csr`]: two flat offset/value pairs,
//! one net-major (`net_off`/`pins`) and one node-major dual
//! (`node_off`/`node_nets`), plus node weights and net bandwidths.
//! Construction goes through [`HypergraphBuilder`]; the built
//! [`Hypergraph`] is immutable, which keeps every incremental tracker
//! honest.

use ppn_graph::{NodeId, WeightedGraph};
use serde::{Deserialize, Serialize};

/// Index of a net within a [`Hypergraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetId(pub u32);

impl NetId {
    /// Index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Incremental builder for a [`Hypergraph`].
#[derive(Clone, Debug, Default)]
pub struct HypergraphBuilder {
    vwgt: Vec<u64>,
    nets: Vec<(u64, Vec<u32>)>,
}

impl HypergraphBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with resource weight `w` (clamped to ≥ 1), returning
    /// its id.
    pub fn add_node(&mut self, w: u64) -> NodeId {
        let id = NodeId(self.vwgt.len() as u32);
        self.vwgt.push(w.max(1));
        id
    }

    /// Add a net of bandwidth `weight` over `pins`. The first pin is the
    /// net's *root* (the producer of the stream); duplicate pins are
    /// dropped keeping first occurrence, so a producer that also
    /// consumes its own stream contributes one pin. Panics on unknown
    /// pins or an empty pin list.
    pub fn add_net(&mut self, weight: u64, pins: &[NodeId]) -> NetId {
        assert!(!pins.is_empty(), "a net needs at least one pin");
        let mut dedup: Vec<u32> = Vec::with_capacity(pins.len());
        for &p in pins {
            assert!(
                (p.index()) < self.vwgt.len(),
                "net references unknown node {p:?}"
            );
            if !dedup.contains(&p.0) {
                dedup.push(p.0);
            }
        }
        let id = NetId(self.nets.len() as u32);
        self.nets.push((weight, dedup));
        id
    }

    /// Freeze into the immutable CSR form.
    pub fn build(self) -> Hypergraph {
        let n = self.vwgt.len();
        let mut net_off = Vec::with_capacity(self.nets.len() + 1);
        let mut pins = Vec::new();
        let mut net_wgt = Vec::with_capacity(self.nets.len());
        net_off.push(0);
        for (w, ps) in &self.nets {
            pins.extend_from_slice(ps);
            net_off.push(pins.len());
            net_wgt.push(*w);
        }
        // dual: nets incident to each node, by counting sort
        let mut deg = vec![0usize; n];
        for &p in &pins {
            deg[p as usize] += 1;
        }
        let mut node_off = Vec::with_capacity(n + 1);
        node_off.push(0);
        for d in &deg {
            node_off.push(node_off.last().unwrap() + d);
        }
        let mut cursor = node_off[..n].to_vec();
        let mut node_nets = vec![0u32; pins.len()];
        for (net, w) in self.nets.iter().enumerate() {
            for &p in &w.1 {
                node_nets[cursor[p as usize]] = net as u32;
                cursor[p as usize] += 1;
            }
        }
        Hypergraph {
            vwgt: self.vwgt,
            net_off,
            pins,
            net_wgt,
            node_off,
            node_nets,
        }
    }
}

/// Immutable CSR incidence hypergraph: node weights, net pins (net-major)
/// and the node→nets dual (node-major).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hypergraph {
    /// Node (resource) weights, length `n`.
    vwgt: Vec<u64>,
    /// Offsets into `pins`, length `num_nets + 1`.
    net_off: Vec<usize>,
    /// Concatenated pin lists; the first pin of each net is its root.
    pins: Vec<u32>,
    /// Net bandwidth weights, length `num_nets`.
    net_wgt: Vec<u64>,
    /// Offsets into `node_nets`, length `n + 1`.
    node_off: Vec<usize>,
    /// Concatenated incident-net lists per node.
    node_nets: Vec<u32>,
}

impl Hypergraph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.net_wgt.len()
    }

    /// Total number of pins across nets.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// Resource weight of node `v`.
    #[inline]
    pub fn node_weight(&self, v: NodeId) -> u64 {
        self.vwgt[v.index()]
    }

    /// All node weights.
    #[inline]
    pub fn node_weights(&self) -> &[u64] {
        &self.vwgt
    }

    /// Bandwidth weight of net `e`.
    #[inline]
    pub fn net_weight(&self, e: NetId) -> u64 {
        self.net_wgt[e.index()]
    }

    /// Pins of net `e`; the first entry is the net's root (producer).
    #[inline]
    pub fn pins(&self, e: NetId) -> &[u32] {
        &self.pins[self.net_off[e.index()]..self.net_off[e.index() + 1]]
    }

    /// Root pin (producer) of net `e`.
    #[inline]
    pub fn root(&self, e: NetId) -> NodeId {
        NodeId(self.pins(e)[0])
    }

    /// Nets incident to node `v`.
    #[inline]
    pub fn nets_of(&self, v: NodeId) -> &[u32] {
        &self.node_nets[self.node_off[v.index()]..self.node_off[v.index() + 1]]
    }

    /// Number of nets incident to `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.node_off[v.index() + 1] - self.node_off[v.index()]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.vwgt.len()).map(NodeId::from_index)
    }

    /// All net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.net_wgt.len()).map(|i| NetId(i as u32))
    }

    /// Total node weight.
    pub fn total_node_weight(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Heaviest single node.
    pub fn max_node_weight(&self) -> u64 {
        self.vwgt.iter().copied().max().unwrap_or(0)
    }

    /// Total net bandwidth.
    pub fn total_net_weight(&self) -> u64 {
        self.net_wgt.iter().sum()
    }

    /// Build the degenerate hypergraph of a weighted graph: one 2-pin
    /// net per edge (lower node id first, as the root). On the result,
    /// connectivity-(λ−1) equals the graph's edge cut for every
    /// partition — the correctness anchor tying the hypergraph engine to
    /// `gp-core`.
    pub fn from_graph(g: &WeightedGraph) -> Self {
        let mut b = HypergraphBuilder::new();
        for v in g.node_ids() {
            b.add_node(g.node_weight(v));
        }
        for (u, v, w) in g.edges() {
            b.add_net(w, &[u, v]);
        }
        b.build()
    }

    /// Clique-expand into a weighted graph: a net of size `s` becomes a
    /// clique whose edges carry `max(w / (s − 1), 1)` each (the standard
    /// hMETIS-style approximation; exact for `s == 2`). Parallel edges
    /// from overlapping nets merge by summing.
    pub fn clique_expansion(&self) -> WeightedGraph {
        let mut g = WeightedGraph::new();
        for &w in &self.vwgt {
            g.add_node(w);
        }
        for e in self.net_ids() {
            let ps = self.pins(e);
            if ps.len() < 2 {
                continue;
            }
            let w = (self.net_weight(e) / (ps.len() as u64 - 1)).max(1);
            for i in 0..ps.len() {
                for j in (i + 1)..ps.len() {
                    g.add_or_merge_edge(NodeId(ps[i]), NodeId(ps[j]), w)
                        .expect("pins are distinct nodes");
                }
            }
        }
        g
    }

    /// Structural validation: offsets monotone, pins in range and
    /// distinct per net, dual consistent with the pin lists.
    ///
    /// Raw CSR invariants come first — everything after them slices
    /// with these offsets, so a deserialized `Hypergraph` with
    /// truncated arrays or corrupt offsets must be rejected here rather
    /// than panicking inside [`pins`](Self::pins) /
    /// [`nets_of`](Self::nets_of).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if self.net_off.len() != self.net_wgt.len() + 1 {
            return Err(format!(
                "net_off has {} entries for {} nets (want nets + 1)",
                self.net_off.len(),
                self.net_wgt.len()
            ));
        }
        if self.node_off.len() != n + 1 {
            return Err(format!(
                "node_off has {} entries for {n} nodes (want nodes + 1)",
                self.node_off.len()
            ));
        }
        if self.net_off[0] != 0 || self.node_off[0] != 0 {
            return Err("offset arrays must start at 0".to_string());
        }
        if self.net_off.windows(2).any(|w| w[0] > w[1]) {
            return Err("net_off is not monotone".to_string());
        }
        if self.node_off.windows(2).any(|w| w[0] > w[1]) {
            return Err("node_off is not monotone".to_string());
        }
        if *self.net_off.last().unwrap() != self.pins.len() {
            return Err(format!(
                "net_off ends at {} but there are {} pins (truncated input?)",
                self.net_off.last().unwrap(),
                self.pins.len()
            ));
        }
        if *self.node_off.last().unwrap() != self.node_nets.len() {
            return Err(format!(
                "node_off ends at {} but the dual has {} entries (truncated input?)",
                self.node_off.last().unwrap(),
                self.node_nets.len()
            ));
        }
        if let Some(&bad) = self
            .node_nets
            .iter()
            .find(|&&e| e as usize >= self.net_wgt.len())
        {
            return Err(format!("dual references net {bad} which does not exist"));
        }
        for e in self.net_ids() {
            let ps = self.pins(e);
            if ps.is_empty() {
                return Err(format!("net {} has no pins", e.0));
            }
            for (i, &p) in ps.iter().enumerate() {
                if p as usize >= n {
                    return Err(format!("net {} pin {p} out of range", e.0));
                }
                if ps[..i].contains(&p) {
                    return Err(format!("net {} has duplicate pin {p}", e.0));
                }
            }
        }
        let mut pin_count = 0usize;
        for v in self.node_ids() {
            for &net in self.nets_of(v) {
                if !self.pins(NetId(net)).contains(&v.0) {
                    return Err(format!("dual lists net {net} for node {v:?} spuriously"));
                }
                pin_count += 1;
            }
        }
        if pin_count != self.pins.len() {
            return Err(format!(
                "dual covers {pin_count} pins, incidence has {}",
                self.pins.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 nodes; net A = {0,1,2} w 6, net B = {2,3} w 5.
    pub(crate) fn small() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<_> = (0..4).map(|i| b.add_node(10 * (i + 1))).collect();
        b.add_net(6, &[n[0], n[1], n[2]]);
        b.add_net(5, &[n[2], n[3]]);
        b.build()
    }

    #[test]
    fn csr_shape_and_dual() {
        let h = small();
        h.validate().unwrap();
        assert_eq!(h.num_nodes(), 4);
        assert_eq!(h.num_nets(), 2);
        assert_eq!(h.num_pins(), 5);
        assert_eq!(h.pins(NetId(0)), &[0, 1, 2]);
        assert_eq!(h.root(NetId(1)), NodeId(2));
        assert_eq!(h.nets_of(NodeId(2)), &[0, 1]);
        assert_eq!(h.degree(NodeId(2)), 2);
        assert_eq!(h.total_node_weight(), 100);
        assert_eq!(h.total_net_weight(), 11);
        assert_eq!(h.max_node_weight(), 40);
    }

    #[test]
    fn corrupt_csr_is_rejected_not_panicking() {
        let good = small();
        // Each mutation mirrors a malformed/truncated serde payload; all
        // must produce an Err, never an out-of-bounds slice.
        let mut truncated_pins = good.clone();
        truncated_pins.pins.pop();
        assert!(truncated_pins.validate().unwrap_err().contains("truncated"));

        let mut bad_start = good.clone();
        bad_start.net_off[0] = 1;
        assert!(bad_start.validate().is_err());

        let mut non_monotone = good.clone();
        non_monotone.net_off[1] = 5;
        non_monotone.net_off[2] = 3;
        assert!(non_monotone.validate().is_err());

        let mut short_offsets = good.clone();
        short_offsets.net_off.pop();
        assert!(short_offsets.validate().unwrap_err().contains("net_off"));

        let mut truncated_dual = good.clone();
        truncated_dual.node_nets.pop();
        assert!(truncated_dual.validate().is_err());

        let mut phantom_net = good.clone();
        phantom_net.node_nets[0] = 99;
        assert!(phantom_net
            .validate()
            .unwrap_err()
            .contains("does not exist"));
    }

    #[test]
    fn duplicate_pins_are_dropped() {
        let mut b = HypergraphBuilder::new();
        let a = b.add_node(1);
        let c = b.add_node(1);
        b.add_net(3, &[a, c, a]);
        let h = b.build();
        assert_eq!(h.pins(NetId(0)), &[0, 1]);
        h.validate().unwrap();
    }

    #[test]
    fn from_graph_matches_edges() {
        let mut g = WeightedGraph::new();
        let a = g.add_node(2);
        let c = g.add_node(3);
        let d = g.add_node(4);
        g.add_edge(a, c, 7).unwrap();
        g.add_edge(c, d, 9).unwrap();
        let h = Hypergraph::from_graph(&g);
        h.validate().unwrap();
        assert_eq!(h.num_nets(), 2);
        assert!(h.net_ids().all(|e| h.pins(e).len() == 2));
        assert_eq!(h.total_net_weight(), 16);
        assert_eq!(h.node_weights(), &[2, 3, 4]);
    }

    #[test]
    fn clique_expansion_is_exact_on_two_pin_nets() {
        let mut g = WeightedGraph::new();
        let a = g.add_node(2);
        let c = g.add_node(3);
        g.add_edge(a, c, 7).unwrap();
        let h = Hypergraph::from_graph(&g);
        let back = h.clique_expansion();
        assert_eq!(back.num_edges(), 1);
        assert_eq!(back.edge_weight(back.find_edge(a, c).unwrap()), 7);
    }

    #[test]
    fn clique_expansion_splits_net_weight() {
        let h = small();
        let g = h.clique_expansion();
        // net A (w 6, 3 pins) → triangle of weight-3 edges; net B stays 5
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_weight(g.find_edge(NodeId(0), NodeId(1)).unwrap()), 3);
        assert_eq!(g.edge_weight(g.find_edge(NodeId(2), NodeId(3)).unwrap()), 5);
    }

    #[test]
    fn serde_roundtrip() {
        let h = small();
        let s = serde_json::to_string(&h).unwrap();
        let back: Hypergraph = serde_json::from_str(&s).unwrap();
        assert_eq!(back, h);
    }
}

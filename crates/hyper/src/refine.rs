//! Boundary-driven constrained FM-style refinement under the
//! connectivity metric.
//!
//! Mirrors `gp_core::constrained_refine`: the primary objective is
//! violation magnitude against `Rmax`/`Bmax` (bandwidth charged per
//! spanned boundary, see [`crate::connectivity`]), the secondary
//! objective is the connectivity-(λ−1) cost. Each pass visits only the
//! pins of cut nets plus the nodes of `Rmax`-violating parts — interior
//! nodes of feasible parts cannot have a strictly improving move,
//! because moving one can only create a new cut net (raising cost and
//! never lowering any violation it doesn't touch).
//!
//! Move evaluation is *transactional*: the candidate move is applied to
//! the incremental [`NetConnectivity`] tracker, the O(1) aggregates are
//! read, and the move is reverted — two O(nets(v)·k) tracker updates per
//! candidate, no allocation, no rescans. Candidates are restricted to
//! the parts the node's nets already span (plus, when its home part
//! violates `Rmax`, the lightest part as a pure resource escape).

use crate::connectivity::NetConnectivity;
use crate::hypergraph::{Hypergraph, NetId};
use crate::metrics::part_weights;
use ppn_graph::prng::{derive_seed, XorShift128Plus};
use ppn_graph::{Constraints, NodeId, Partition};

/// Options for [`hyper_refine`].
#[derive(Clone, Debug)]
pub struct HyperRefineOptions {
    /// Maximum sweeps.
    pub max_passes: usize,
    /// Visit-order seed.
    pub seed: u64,
    /// Never empty a part.
    pub protect_nonempty: bool,
}

impl Default for HyperRefineOptions {
    fn default() -> Self {
        HyperRefineOptions {
            max_passes: 8,
            seed: 1,
            protect_nonempty: true,
        }
    }
}

/// The refinement engine: tracker plus part-weight/size bookkeeping with
/// an incrementally-maintained resource excess.
struct HyperEngine {
    state: NetConnectivity,
    part_weights: Vec<u64>,
    part_sizes: Vec<usize>,
    rmax: u64,
    res_excess: u64,
}

impl HyperEngine {
    fn new(hg: &Hypergraph, p: &Partition, c: &Constraints) -> Self {
        let mut state = NetConnectivity::new(hg, p);
        state.track_bmax(c.bmax);
        let part_weights = part_weights(hg, p);
        let res_excess = part_weights.iter().map(|&w| w.saturating_sub(c.rmax)).sum();
        HyperEngine {
            state,
            part_weights,
            part_sizes: p.part_sizes(),
            rmax: c.rmax,
            res_excess,
        }
    }

    /// Total violation magnitude (bandwidth + resource). O(1).
    #[inline]
    fn violation(&self) -> u64 {
        self.state.tracked_excess() + self.res_excess
    }

    /// Move `v: from → to` through every structure (weights, sizes,
    /// tracker). Used for both trial and committed moves.
    fn shift(&mut self, hg: &Hypergraph, v: NodeId, from: u32, to: u32) {
        let wv = hg.node_weight(v);
        let (f, t) = (from as usize, to as usize);
        let (wf, wt) = (self.part_weights[f], self.part_weights[t]);
        self.res_excess -= wf.saturating_sub(self.rmax) - (wf - wv).saturating_sub(self.rmax);
        self.res_excess += (wt + wv).saturating_sub(self.rmax) - wt.saturating_sub(self.rmax);
        self.part_weights[f] -= wv;
        self.part_weights[t] += wv;
        self.part_sizes[f] -= 1;
        self.part_sizes[t] += 1;
        self.state.apply_move(hg, v, from, to);
    }

    /// `(Δviolation, Δconnectivity)` of the move `v: from → to`,
    /// evaluated by apply + revert.
    fn eval(&mut self, hg: &Hypergraph, v: NodeId, from: u32, to: u32) -> (i64, i64) {
        let viol0 = self.violation() as i64;
        let conn0 = self.state.connectivity_cost() as i64;
        self.shift(hg, v, from, to);
        let dviol = self.violation() as i64 - viol0;
        let dconn = self.state.connectivity_cost() as i64 - conn0;
        self.shift(hg, v, to, from);
        (dviol, dconn)
    }

    /// Nodes worth visiting this pass: pins of cut nets plus every node
    /// of an `Rmax`-violating part. `stamp` is a reusable n-length
    /// dedup buffer.
    fn collect_active(
        &self,
        hg: &Hypergraph,
        p: &Partition,
        out: &mut Vec<NodeId>,
        stamp: &mut [bool],
    ) {
        out.clear();
        stamp.iter_mut().for_each(|s| *s = false);
        for e in hg.net_ids() {
            if self.state.is_cut(e) {
                for &pin in hg.pins(e) {
                    if !stamp[pin as usize] {
                        stamp[pin as usize] = true;
                        out.push(NodeId(pin));
                    }
                }
            }
        }
        if self.part_weights.iter().any(|&w| w > self.rmax) {
            for (i, &q) in p.assignment().iter().enumerate() {
                if self.part_weights[q as usize] > self.rmax && !stamp[i] {
                    stamp[i] = true;
                    out.push(NodeId::from_index(i));
                }
            }
        }
    }

    /// Find and apply the best strictly-improving move of `v`, if any.
    fn try_best_move(
        &mut self,
        hg: &Hypergraph,
        p: &mut Partition,
        v: NodeId,
        protect_nonempty: bool,
        targets: &mut Vec<u32>,
    ) -> bool {
        let k = self.state.k();
        let from = p.part_of(v);
        if protect_nonempty && self.part_sizes[from as usize] == 1 {
            return false;
        }
        // candidate targets: parts already spanned by v's nets, plus the
        // lightest part when v's home violates Rmax
        targets.clear();
        for &net in hg.nets_of(v) {
            let e = NetId(net);
            for q in 0..k as u32 {
                if q != from && self.state.pin_count(e, q as usize) > 0 && !targets.contains(&q) {
                    targets.push(q);
                }
            }
        }
        if self.part_weights[from as usize] > self.rmax {
            if let Some(escape) = (0..k as u32)
                .filter(|&t| t != from)
                .min_by_key(|&t| (self.part_weights[t as usize], t))
            {
                if !targets.contains(&escape) {
                    targets.push(escape);
                }
            }
        }
        let mut best: Option<(i64, i64, u32)> = None;
        // drain the scratch so `self` stays free for the trial moves
        while let Some(t) = targets.pop() {
            let (dviol, dconn) = self.eval(hg, v, from, t);
            if dviol < 0 || (dviol == 0 && dconn < 0) {
                let key = (dviol, dconn, t);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
        }
        if let Some((_, _, t)) = best {
            self.shift(hg, v, from, t);
            p.assign(v, t);
            true
        } else {
            false
        }
    }
}

/// Constrained refinement sweep over a complete partition. Each pass
/// visits the active nodes in seeded random order; each visited node
/// takes its best strictly-improving `(Δviolation, Δconnectivity)`
/// move. Violations never increase; the connectivity cost never
/// increases while feasible. Returns the number of moves applied.
pub fn hyper_refine(
    hg: &Hypergraph,
    p: &mut Partition,
    c: &Constraints,
    opts: &HyperRefineOptions,
) -> usize {
    assert!(p.is_complete(), "refinement needs a complete partition");
    if hg.num_nodes() == 0 || p.k() <= 1 {
        return 0;
    }
    let mut engine = HyperEngine::new(hg, p, c);
    let mut rng = XorShift128Plus::new(derive_seed(opts.seed, 0x4F1));
    let mut active: Vec<NodeId> = Vec::new();
    let mut stamp = vec![false; hg.num_nodes()];
    let mut targets: Vec<u32> = Vec::new();
    let mut total_moves = 0;
    for _ in 0..opts.max_passes {
        engine.collect_active(hg, p, &mut active, &mut stamp);
        rng.shuffle(&mut active);
        let mut moves = 0;
        for &v in &active {
            if engine.try_best_move(hg, p, v, opts.protect_nonempty, &mut targets) {
                moves += 1;
            }
        }
        total_moves += moves;
        if moves == 0 {
            break;
        }
    }
    total_moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypergraph::HypergraphBuilder;
    use crate::metrics::{is_feasible, HyperQuality};

    /// Two multicast stars sharing a middle consumer: hub 0 → {1,2,3},
    /// hub 4 → {3,5,6}; light 2-pin net {3, 6}.
    fn two_stars() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let n: Vec<_> = (0..7).map(|_| b.add_node(10)).collect();
        b.add_net(20, &[n[0], n[1], n[2], n[3]]);
        b.add_net(20, &[n[4], n[3], n[5], n[6]]);
        b.add_net(3, &[n[3], n[6]]);
        b.build()
    }

    #[test]
    fn refinement_reduces_connectivity_without_violating() {
        let hg = two_stars();
        let c = Constraints::new(50, 100);
        // scrambled start
        let mut p = Partition::from_assignment(vec![0, 1, 0, 1, 0, 1, 0], 2).unwrap();
        let before = HyperQuality::measure(&hg, &p).connectivity_cost;
        hyper_refine(&hg, &mut p, &c, &HyperRefineOptions::default());
        let after = HyperQuality::measure(&hg, &p).connectivity_cost;
        assert!(after <= before, "{before} -> {after}");
        assert!(is_feasible(&hg, &p, &c));
    }

    #[test]
    fn refinement_repairs_bandwidth_violation() {
        let hg = two_stars();
        // both stars cut plus the bridge: traffic 20+20+3 over one boundary
        let mut p = Partition::from_assignment(vec![0, 1, 1, 0, 0, 1, 1], 2).unwrap();
        let c = Constraints::new(60, 25);
        assert!(!is_feasible(&hg, &p, &c));
        hyper_refine(&hg, &mut p, &c, &HyperRefineOptions::default());
        assert!(
            is_feasible(&hg, &p, &c),
            "bandwidth repair failed: {:?}",
            HyperQuality::measure(&hg, &p)
        );
    }

    #[test]
    fn refinement_repairs_resource_violation() {
        let hg = two_stars();
        let mut p = Partition::from_assignment(vec![0, 0, 0, 0, 0, 0, 1], 2).unwrap();
        let c = Constraints::new(40, 100);
        hyper_refine(&hg, &mut p, &c, &HyperRefineOptions::default());
        assert!(
            is_feasible(&hg, &p, &c),
            "weights {:?}",
            part_weights(&hg, &p)
        );
    }

    #[test]
    fn violations_never_increase() {
        let hg = two_stars();
        let c = Constraints::new(35, 22);
        for seed in 0..8u64 {
            let assign: Vec<u32> = (0..7).map(|i| ((i + seed as usize) % 3) as u32).collect();
            let mut p = Partition::from_assignment(assign, 3).unwrap();
            let v0 = HyperQuality::measure(&hg, &p)
                .goodness_key(c.rmax, c.bmax)
                .1;
            hyper_refine(
                &hg,
                &mut p,
                &c,
                &HyperRefineOptions {
                    seed,
                    ..Default::default()
                },
            );
            let v1 = HyperQuality::measure(&hg, &p)
                .goodness_key(c.rmax, c.bmax)
                .1;
            assert!(v1 <= v0, "seed {seed}: violation {v0} -> {v1}");
        }
    }

    #[test]
    fn protect_nonempty_holds() {
        let hg = two_stars();
        let mut p = Partition::from_assignment(vec![0, 1, 1, 1, 1, 1, 1], 2).unwrap();
        hyper_refine(
            &hg,
            &mut p,
            &Constraints::unconstrained(),
            &HyperRefineOptions::default(),
        );
        assert!(p.part_sizes().iter().all(|&s| s >= 1));
    }

    #[test]
    fn single_part_is_a_no_op() {
        let hg = two_stars();
        let mut p = Partition::all_in_one(7, 1);
        let moves = hyper_refine(
            &hg,
            &mut p,
            &Constraints::unconstrained(),
            &HyperRefineOptions::default(),
        );
        assert_eq!(moves, 0);
    }
}

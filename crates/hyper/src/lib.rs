//! # ppn-hyper
//!
//! Hypergraph substrate and multilevel connectivity-metric partitioner
//! for multicast process networks.
//!
//! The graph model of `ppn-graph` charges a producer that multicasts one
//! token stream to consumers on several FPGAs once *per consumer* — but
//! on a real multi-FPGA link the stream crosses each boundary once.
//! Modelling every channel as a *net* (hyperedge) over the producer and
//! all its consumers, and minimising the connectivity metric
//! `Σ w(e)·(λ(e) − 1)` (λ = number of parts a net spans), prices
//! multicast correctly — the classic hypergraph-partitioning objective
//! (Schlag et al., n-level recursive bisection; Papp et al., 2022).
//!
//! The crate mirrors the workspace's graph stack piece by piece:
//!
//! * [`hypergraph`] — CSR incidence storage ([`Hypergraph`],
//!   [`HypergraphBuilder`]), the dual node→nets index, and the
//!   degenerate [`Hypergraph::from_graph`] embedding (one 2-pin net per
//!   edge) on which every objective coincides with the graph engine's —
//!   the correctness anchor, property-tested in `tests/properties.rs`;
//! * [`connectivity`] — the incremental [`NetConnectivity`] tracker
//!   (per-net part-pin counts, λ, connectivity cost, cut-net count, and
//!   the per-boundary [`BandwidthMatrix`] with a tracked `Bmax` excess),
//!   O(nets(v)·k) per move, O(1) per query;
//! * [`coarsen`] — heavy-pin-connectivity matching and net contraction;
//! * [`initial`] — greedy constrained growth with restarts;
//! * [`refine`] — boundary-driven constrained FM-style refinement;
//! * [`multilevel`] — the [`hyper_partition`] V-cycle driver honouring
//!   the paper's `Rmax`/`Bmax` constraints under multicast-aware
//!   bandwidth charging.

pub mod coarsen;
pub mod connectivity;
pub mod hypergraph;
pub mod initial;
pub mod metrics;
pub mod multilevel;
pub mod refine;

pub use coarsen::{
    contract, contract_reference, contract_with, heavy_connectivity_matching, hyper_coarsen,
    HyperContractScratch, HyperHierarchy, HyperLevel,
};
pub use connectivity::{BandwidthMatrix, NetConnectivity};
pub use hypergraph::{Hypergraph, HypergraphBuilder, NetId};
pub use initial::{greedy_hyper_initial, HyperInitialOptions};
pub use metrics::{is_feasible, part_weights, HyperQuality};
pub use multilevel::{
    hyper_partition, hyper_partition_budgeted, HyperInfeasible, HyperParams, HyperResult,
};
pub use refine::{hyper_refine, HyperRefineOptions};

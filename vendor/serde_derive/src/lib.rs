//! Offline `#[derive(Serialize, Deserialize)]` shim.
//!
//! Parses the derive input by walking `proc_macro::TokenTree`s directly
//! (no syn/quote — the build container cannot reach crates.io) and emits
//! impls of the value-model `serde::Serialize` / `serde::Deserialize`
//! traits from the sibling `serde` stub.
//!
//! Supported shapes — exactly what this workspace derives:
//!
//! * structs with named fields (`#[serde(default)]` and
//!   `#[serde(default = "path")]` honoured per field);
//! * tuple structs (newtypes serialise transparently, wider tuples as
//!   arrays);
//! * enums with unit variants, struct variants, and single-field tuple
//!   variants, in serde's externally-tagged representation.
//!
//! Generics are not supported; unsupported input expands to
//! `compile_error!` so failures are loud and local.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field deserialises.
#[derive(Clone)]
enum FieldDefault {
    /// No `serde(default)`: missing is an error.
    Required,
    /// Bare `#[serde(default)]`: `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: call the named function.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

impl Field {
    /// The field's initialiser inside the generated `Deserialize` impl,
    /// reading from the object bound to `obj`.
    fn de_init(&self, obj: &str) -> String {
        match &self.default {
            FieldDefault::Required => {
                format!(
                    "{}: ::serde::de_field({obj}, {:?})?,\n",
                    self.name, self.name
                )
            }
            FieldDefault::Trait => format!(
                "{}: ::serde::de_field_default({obj}, {:?})?,\n",
                self.name, self.name
            ),
            FieldDefault::Path(path) => format!(
                "{}: ::serde::de_field_or_else({obj}, {:?}, {path})?,\n",
                self.name, self.name
            ),
        }
    }
}

enum Variant {
    Unit(String),
    Struct(String, Vec<Field>),
    Newtype(String),
}

enum Input {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    Enum(String, Vec<Variant>),
}

/// True for a `#` punct starting an attribute.
fn is_pound(t: &TokenTree) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == '#')
}

/// The `default` declaration inside a `#[serde(...)]` attribute group,
/// if any: bare `default` maps to [`FieldDefault::Trait`],
/// `default = "path"` to [`FieldDefault::Path`] with the quoted path.
fn attr_serde_default(g: &proc_macro::Group) -> Option<FieldDefault> {
    let mut it = g.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(inner)))
            if name.to_string() == "serde" =>
        {
            let toks: Vec<TokenTree> = inner.stream().into_iter().collect();
            for (i, t) in toks.iter().enumerate() {
                if !matches!(t, TokenTree::Ident(id) if id.to_string() == "default") {
                    continue;
                }
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (toks.get(i + 1), toks.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let path = lit.to_string().trim_matches('"').to_string();
                        return Some(FieldDefault::Path(path));
                    }
                }
                return Some(FieldDefault::Trait);
            }
            None
        }
        _ => None,
    }
}

/// Skip attributes at the cursor; returns the `serde(default ...)`
/// declaration found among them (the last one wins), or
/// [`FieldDefault::Required`] when there is none.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> FieldDefault {
    let mut default = FieldDefault::Required;
    while *pos < tokens.len() && is_pound(&tokens[*pos]) {
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            if let Some(d) = attr_serde_default(g) {
                default = d;
            }
            *pos += 2;
        } else {
            break;
        }
    }
    default
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` at the cursor.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Skip a type (everything up to a top-level `,`), tracking `<`/`>` depth
/// so commas inside generics don't terminate early. Parenthesised tuples
/// arrive as atomic groups, so only angle brackets need counting.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if angle == 0 => return,
                '<' => angle += 1,
                '>' => angle -= 1,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parse the fields of a named-field body `{ a: T, b: U }`.
fn parse_named_fields(body: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let default = skip_attrs(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token `{other}` in field list")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        skip_type(&tokens, &mut pos);
        pos += 1; // consume the `,` (or step past the end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Count the top-level comma-separated fields of a tuple body `(T, U)`.
fn tuple_arity(body: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle: i32 = 0;
    let mut trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                ',' if angle == 0 => {
                    arity += 1;
                    trailing_comma = true;
                    continue;
                }
                '<' => angle += 1,
                '>' => angle -= 1,
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        arity -= 1;
    }
    arity
}

fn parse_variants(body: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
        };
        pos += 1;
        let variant = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                pos += 1;
                Variant::Struct(name, fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if tuple_arity(g) != 1 {
                    return Err(format!(
                        "tuple variant `{name}` with more than one field is not supported"
                    ));
                }
                pos += 1;
                Variant::Newtype(name)
            }
            _ => Variant::Unit(name),
        };
        // consume trailing `,`
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(variant);
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attrs(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);
    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        _ => return Err("expected a type name".into()),
    };
    pos += 1;
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "generic type `{name}` is not supported by the serde shim"
        ));
    }
    match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::NamedStruct(name, parse_named_fields(g)?))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Input::TupleStruct(name, tuple_arity(g)))
            }
            _ => Err(format!("unit struct `{name}` is not supported")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::Enum(name, parse_variants(g)?))
            }
            _ => Err(format!("expected a body for enum `{name}`")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return error(&e),
    };
    let body = match &parsed {
        Input::NamedStruct(_, fields) => {
            let mut s = String::from(
                "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "__obj.push(({:?}.to_string(), ::serde::Serialize::to_value(&self.{})));\n",
                    f.name, f.name
                ));
            }
            s.push_str("::serde::Value::Object(__obj)");
            s
        }
        Input::TupleStruct(_, 1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Input::TupleStruct(_, arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Input::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    Variant::Newtype(vn) => arms.push_str(&format!(
                        "{name}::{vn}(__x) => ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(__x))]),\n"
                    )),
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut __inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "__inner.push(({:?}.to_string(), ::serde::Serialize::to_value({})));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} ::serde::Value::Object(vec![({vn:?}.to_string(), ::serde::Value::Object(__inner))]) }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let name = match &parsed {
        Input::NamedStruct(n, _) | Input::TupleStruct(n, _) | Input::Enum(n, _) => n,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
        }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return error(&e),
    };
    let body = match &parsed {
        Input::NamedStruct(name, fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&f.de_init("__v"));
            }
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Input::TupleStruct(name, 1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Input::TupleStruct(name, arity) => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array\"))?;\n\
                 if __a.len() != {arity} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\"wrong tuple length\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Input::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Newtype(vn) => tagged_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__inner)?)),\n"
                    )),
                    Variant::Struct(vn, fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&f.de_init("__inner"));
                        }
                        tagged_arms.push_str(&format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                             format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                         let (__tag, __inner) = &__o[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\n\
                         format!(\"expected {name} variant, got {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    let name = match &parsed {
        Input::NamedStruct(n, _) | Input::TupleStruct(n, _) | Input::Enum(n, _) => n,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
        }}"
    )
    .parse()
    .unwrap()
}

//! Offline shim for the slice of `proptest` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! deterministic mini property-tester: the [`proptest!`] macro expands each
//! property into a `#[test]` that draws `cases` inputs from the declared
//! strategies using a seed derived from the test's module path and name.
//! There is no shrinking — a failing case panics with the ordinary
//! `assert!` message, and re-running reproduces it exactly (the RNG is a
//! pure function of test name and case index).
//!
//! Supported strategy surface: integer ranges (`lo..hi`), `any::<T>()`,
//! tuples of strategies, `prop_map`, and `proptest::collection::vec`.

pub mod collection;

use std::ops::Range;

/// Deterministic xorshift64* RNG, seeded per (test, case).
pub struct TestRng(u64);

impl TestRng {
    /// RNG for one case of one property test. The seed mixes a stable
    /// string hash of the test path with the case index, so every case is
    /// distinct and every run identical.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        if h == 0 {
            h = 0x2545_f491_4f6c_dd1d;
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        })*
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

/// Types with a full-range default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // uniform in [0, 1): enough for weighting/probability parameters
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        })*
    };
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Expand property functions into deterministic `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn determinism_per_case() {
        let mut a = crate::TestRng::for_case("t", 5);
        let mut b = crate::TestRng::for_case("t", 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_draws_tuples_and_maps(
            (a, b) in (1u64..10, 1u64..10).prop_map(|(x, y)| (x * 2, y)),
            n in 0usize..4,
            xs in crate::collection::vec(0u32..5, 1..6)
        ) {
            prop_assert!(a % 2 == 0);
            prop_assert!((1..10u64).contains(&b));
            prop_assert!(n < 4);
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 5));
        }
    }
}

//! `proptest::collection` shim: the `vec` strategy.

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy producing a `Vec` whose length is drawn from `len` and whose
/// elements come from `elem`.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// `Vec` strategy over an element strategy and a length range.
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

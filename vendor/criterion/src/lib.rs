//! Offline shim for the slice of `criterion` this workspace's benches
//! use.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors this stand-in: the same `criterion_group!`/`criterion_main!`
//! and `benchmark_group` surface, backed by a deliberately small harness —
//! one warm-up iteration, then `sample_size` timed iterations, printing
//! mean ns/iter per benchmark. No statistics, plots, or baselines; the
//! committed perf numbers come from `ppn-bench`'s `perf` binary, and CI
//! only compiles the benches (`cargo bench --no-run`).

use std::fmt::Display;
use std::time::Instant;

/// Opaque hint against over-eager optimisation, as `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark (`group.bench_with_input`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as real criterion renders it.
    pub fn new<S: Into<String>, P: Display>(name: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    /// Timed iterations to run (the group's `sample_size`).
    samples: usize,
    /// Mean nanoseconds per iteration of the last `iter` call.
    mean_ns: f64,
}

impl Bencher {
    /// Run `f` once to warm up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / self.samples.max(1) as f64;
    }
}

/// A named group of benchmarks sharing a `sample_size`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's minimum of
    /// 10 is not enforced here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run `f` as the benchmark `id` within this group.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.criterion
            .report(&format!("{}/{}", self.name, id), b.mean_ns);
    }

    /// Run `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.criterion
            .report(&format!("{}/{}", self.name, id.label), b.mean_ns);
    }

    /// End the group (no-op beyond parity with the real API).
    pub fn finish(self) {}
}

/// The harness entry point handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run `f` as a stand-alone benchmark.
    pub fn bench_function<S: Display, F: FnMut(&mut Bencher)>(&mut self, id: S, mut f: F) {
        let mut b = Bencher {
            samples: 10,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
    }

    fn report(&mut self, label: &str, mean_ns: f64) {
        if mean_ns >= 1_000_000.0 {
            println!("{label:<50} {:>12.3} ms/iter", mean_ns / 1_000_000.0);
        } else {
            println!("{label:<50} {mean_ns:>12.0} ns/iter");
        }
    }
}

/// Bundle benchmark functions into one runner, as `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups, as `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("shim");
            g.sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 7usize), &7usize, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        // one warm-up + three timed iterations
        assert_eq!(ran, 4);
    }

    criterion_group!(test_group, smoke);

    fn smoke(c: &mut Criterion) {
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        test_group();
    }
}

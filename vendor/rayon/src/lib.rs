//! Offline shim for the slice of `rayon` this workspace uses — now a
//! *real* parallel implementation.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors this stand-in. Unlike the original sequential shim, work is
//! actually split across OS threads with `std::thread::scope`: the
//! input is collected, cut into contiguous chunks (one per available
//! core, capped by the item count), and each chunk is mapped on its own
//! scoped thread. Reductions happen after the join, so:
//!
//! * `collect` preserves input order exactly;
//! * `min`/`min_by_key` return the **first** minimum and
//!   `max_by_key` the **last** maximum, matching
//!   [`std::iter::Iterator`] semantics — identical sequentially or in
//!   parallel.
//!
//! All call sites in this workspace additionally reduce with a *total*
//! order (e.g. `min_by_key` over a goodness key that embeds the restart
//! index), so results are schedule-independent by construction — the
//! determinism contract `gp_core::initial` documents.
//!
//! Not implemented (and not used here): work stealing, nested
//! parallelism tuning, custom thread pools, `rayon::scope`/`join`.

use std::num::NonZeroUsize;

/// Number of worker threads to use for `n` items: the machine's
/// available parallelism, capped by the item count. Overridable (mainly
/// for tests and CI) via `RAYON_NUM_THREADS`.
fn num_threads(n: usize) -> usize {
    let hw = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .or_else(|| {
            std::thread::available_parallelism()
                .ok()
                .map(NonZeroUsize::get)
        })
        .unwrap_or(1);
    hw.min(n).max(1)
}

/// Number of worker threads the pool would use for an unbounded amount
/// of work — the knob `RAYON_NUM_THREADS` controls, as in real rayon.
/// Kernels that shard work themselves (e.g. the parallel contraction in
/// `ppn-graph`) size their shard count off this.
pub fn current_num_threads() -> usize {
    num_threads(usize::MAX)
}

/// Map `items` through `f` on scoped worker threads, preserving order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = num_threads(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mapped: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // re-raise with the original payload so assertion
                // messages from worker threads survive
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    mapped.into_iter().flatten().collect()
}

/// An eagerly-collected parallel iterator (the shim's pivot type).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Parallel map: `f` runs on scoped worker threads immediately; the
    /// mapped results come back in input order. (Real rayon defers the
    /// map into the reduction; for the pipelines this workspace builds —
    /// map, then one reduction — eager evaluation is observationally
    /// identical and keeps type inference simple.)
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: par_map_vec(self.items, &f),
        }
    }

    /// The first minimum element, as `Iterator::min`.
    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        self.items.into_iter().min()
    }

    /// The first element minimising `key`, as `Iterator::min_by_key`.
    pub fn min_by_key<K: Ord, G: FnMut(&T) -> K>(self, key: G) -> Option<T> {
        self.items.into_iter().min_by_key(key)
    }

    /// The last element maximising `key`, as `Iterator::max_by_key`.
    pub fn max_by_key<K: Ord, G: FnMut(&T) -> K>(self, key: G) -> Option<T> {
        self.items.into_iter().max_by_key(key)
    }

    /// Collect the items, preserving order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Run `f` on every item for its side effects (e.g. writing through
    /// disjoint `&mut` chunks), on scoped worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        par_map_vec(self.items, &|item| f(item));
    }
}

pub mod prelude {
    pub use super::ParIter;

    /// Parallel counterpart of [`IntoIterator`].
    pub trait IntoParallelIterator: IntoIterator + Sized
    where
        Self::Item: Send,
    {
        /// Collect into the shim's parallel pivot type.
        fn into_par_iter(self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T where T::Item: Send {}

    /// Parallel counterpart of iterating `&self`.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type (a reference in the usual case).
        type Item: Send + 'data;
        /// A parallel iterator over references.
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
        <&'data T as IntoIterator>::Item: Send,
    {
        type Item = <&'data T as IntoIterator>::Item;
        fn par_iter(&'data self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![3u64, 1, 2];
        let m = data.par_iter().min().copied();
        assert_eq!(m, Some(1));
    }

    #[test]
    fn min_by_key_matches_sequential() {
        let par = (0..257usize)
            .into_par_iter()
            .map(|x| (x * 37) % 101)
            .min_by_key(|&v| v);
        let seq = (0..257usize).map(|x| (x * 37) % 101).min_by_key(|&v| v);
        assert_eq!(par, seq);
    }

    #[test]
    fn max_by_key_matches_sequential() {
        let par = (0..257usize)
            .into_par_iter()
            .map(|x| (x * 37) % 101)
            .max_by_key(|&v| v);
        let seq = (0..257usize).map(|x| (x * 37) % 101).max_by_key(|&v| v);
        assert_eq!(par, seq);
    }

    #[test]
    fn threads_actually_run_concurrently() {
        // each item records which thread mapped it; with >= 2 workers
        // and enough items at least two distinct workers must appear
        let workers = super::num_threads(64);
        if workers < 2 {
            return; // single-core runner or RAYON_NUM_THREADS=1
        }
        let ids: std::collections::HashSet<std::thread::ThreadId> = (0..64)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        assert!(ids.len() >= 2, "expected work on >= 2 threads, got {ids:?}");
    }

    #[test]
    fn empty_and_single_inputs() {
        let v: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        assert_eq!(
            std::iter::once(41u32).into_par_iter().map(|x| x + 1).min(),
            Some(42)
        );
    }

    #[test]
    fn for_each_writes_through_disjoint_chunks() {
        let mut data = vec![0u64; 1000];
        let tasks: Vec<(usize, &mut [u64])> = data.chunks_mut(128).enumerate().collect();
        tasks.into_par_iter().for_each(|(ci, chunk)| {
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = (ci * 128 + i) as u64;
            }
        });
        assert_eq!(data, (0..1000).collect::<Vec<u64>>());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn borrows_are_usable_from_workers() {
        // scoped threads: mapping may capture &data
        let data: Vec<u64> = (0..100).collect();
        let total: u64 = {
            let slice = &data;
            (0..100usize)
                .into_par_iter()
                .map(|i| slice[i])
                .collect::<Vec<_>>()
                .iter()
                .sum()
        };
        assert_eq!(total, data.iter().sum::<u64>());
    }
}

//! Offline shim for the tiny slice of `rayon` this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace
//! vendors a sequential stand-in: `into_par_iter()` simply yields the
//! ordinary sequential iterator. All call sites in this workspace reduce
//! with a total order (`min_by_key` over a goodness key), so sequential
//! and parallel execution are observationally identical — which is
//! exactly the determinism contract `gp_core::initial` documents.

pub mod prelude {
    /// Sequential stand-in for rayon's `IntoParallelIterator`.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Returns the ordinary sequential iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator> IntoParallelIterator for T {}

    /// Sequential stand-in for rayon's `IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type.
        type Iter: Iterator;
        /// Returns the ordinary sequential iterator over references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for T
    where
        &'data T: IntoIterator,
    {
        type Iter = <&'data T as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_is_sequential() {
        let v: Vec<usize> = (0..5).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![3u64, 1, 2];
        let m = data.par_iter().min().copied();
        assert_eq!(m, Some(1));
    }
}

//! Offline shim for the slice of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `from_str`, `to_value`, and the
//! [`json!`] macro, all over the vendored `serde` value model.

mod parse;
mod print;

pub use serde::{Error, Number, Value};

/// Lower any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serialise to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serialise to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Parse a JSON string and rebuild `T` from it.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let v = parse::parse(text)?;
    T::deserialize(&v)
}

/// Build a [`Value`] from JSON-shaped syntax with expression
/// interpolation, e.g. `json!({"k": 4, "rows": [a, b.method()]})`.
///
/// Keys must be string literals (the only form this workspace uses).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {
        $crate::Value::Array($crate::json_internal_array!(@acc [] $($tt)*))
    };
    ({ $($tt:tt)* }) => {
        $crate::Value::Object($crate::json_internal_object!(@acc [] $($tt)*))
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

/// Implementation detail of [`json!`]: munch `"key": value` pairs into a
/// `vec![(key, value), ...]` accumulator.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_object {
    (@acc [$($entries:expr,)*]) => {
        vec![$($entries,)*]
    };
    (@acc [$($entries:expr,)*] $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            @acc [$($entries,)* ($key.to_string(), $crate::Value::Null),] $($($rest)*)?)
    };
    (@acc [$($entries:expr,)*] $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            @acc [$($entries,)* ($key.to_string(), $crate::json!({ $($inner)* })),] $($($rest)*)?)
    };
    (@acc [$($entries:expr,)*] $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_object!(
            @acc [$($entries,)* ($key.to_string(), $crate::json!([ $($inner)* ])),] $($($rest)*)?)
    };
    (@acc [$($entries:expr,)*] $key:literal : $value:expr , $($rest:tt)*) => {
        $crate::json_internal_object!(
            @acc [$($entries,)* ($key.to_string(), $crate::json!($value)),] $($rest)*)
    };
    (@acc [$($entries:expr,)*] $key:literal : $value:expr) => {
        $crate::json_internal_object!(
            @acc [$($entries,)* ($key.to_string(), $crate::json!($value)),])
    };
}

/// Implementation detail of [`json!`]: munch array elements into a
/// `vec![...]` accumulator.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal_array {
    (@acc [$($elems:expr,)*]) => {
        vec![$($elems,)*]
    };
    (@acc [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!(@acc [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@acc [$($elems:expr,)*] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!(
            @acc [$($elems,)* $crate::json!({ $($inner)* }),] $($($rest)*)?)
    };
    (@acc [$($elems:expr,)*] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_internal_array!(
            @acc [$($elems,)* $crate::json!([ $($inner)* ]),] $($($rest)*)?)
    };
    (@acc [$($elems:expr,)*] $value:expr , $($rest:tt)*) => {
        $crate::json_internal_array!(@acc [$($elems,)* $crate::json!($value),] $($rest)*)
    };
    (@acc [$($elems:expr,)*] $value:expr) => {
        $crate::json_internal_array!(@acc [$($elems,)* $crate::json!($value),])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn u64_max_roundtrip() {
        let s = to_string(&u64::MAX).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), u64::MAX);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\n\"quoted\"\t\\slash\u{1F600}ünïcode".to_string();
        let s = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), original);
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v: Vec<(u32, u32, u64)> = vec![(1, 2, 3), (4, 5, 6)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u32, u32, u64)>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Option<String>> = vec![Some("a".into()), None];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Option<String>>>(&s).unwrap(), v);
    }

    #[test]
    fn json_macro_builds_objects() {
        let k = 4u64;
        let v = json!({
            "experiment": 1,
            "k": k,
            "nested": { "xs": [1, 2, 3], "ok": true, "none": null },
        });
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(4));
        let nested = v.get("nested").unwrap();
        assert_eq!(
            nested
                .get("xs")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(nested.get("ok").and_then(Value::as_bool), Some(true));
        assert!(nested.get("none").unwrap().is_null());
        // and the whole artifact prints + parses
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
    }

    #[test]
    fn float_roundtrip() {
        let s = to_string(&1.5f64).unwrap();
        assert_eq!(s, "1.5");
        assert_eq!(from_str::<f64>(&s).unwrap(), 1.5);
        let tiny = 0.056_f64;
        let back: f64 = from_str(&to_string(&tiny).unwrap()).unwrap();
        assert_eq!(back, tiny);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u64>("\"no\"").is_err());
    }
}

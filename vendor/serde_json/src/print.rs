//! Compact and pretty printers for `serde::Value` trees.

use serde::Value;

pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(elems) => {
            if elems.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in elems.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, e, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, e, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

//! Recursive-descent JSON parser producing `serde::Value` trees.

use serde::{Error, Number, Value};

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                let lo = self.hex4()?;
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(c).ok_or_else(|| Error::custom("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::custom("bad \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(Error::custom("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 character verbatim
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

//! The `Deserialize` trait, the error type, and impls for std types.

use crate::value::Value;
use std::fmt;

/// Deserialisation error: a human-readable message.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

fn type_error(expected: &str, got: &Value) -> Error {
    Error(format!("expected {expected}, got {}", got.kind()))
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {
        $(impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| type_error("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        })*
    };
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {
        $(impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| type_error("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error(format!(
                    "{} out of range for {}", n, stringify!($t)
                )))
            }
        })*
    };
}

impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| type_error("number", v))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| type_error("number", v))
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| type_error("bool", v))
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| type_error("string", v))
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| type_error("array", v))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! impl_de_tuple {
    ($($len:literal => ($($name:ident . $idx:tt),+))*) => {
        $(impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| type_error("array", v))?;
                if a.len() != $len {
                    return Err(Error(format!(
                        "expected array of length {}, got {}", $len, a.len()
                    )));
                }
                Ok(($($name::deserialize(&a[$idx])?,)+))
            }
        })*
    };
}

impl_de_tuple! {
    2 => (A.0, B.1)
    3 => (A.0, B.1, C.2)
    4 => (A.0, B.1, C.2, D.3)
    5 => (A.0, B.1, C.2, D.3, E.4)
}

/// Look up and deserialise a required object field (derive-macro helper).
pub fn de_field<T: Deserialize>(obj: &Value, key: &str) -> Result<T, Error> {
    match obj.get(key) {
        Some(v) => T::deserialize(v).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => Err(Error(format!("missing field `{key}`"))),
    }
}

/// Like [`de_field`], but a missing key falls back to `Default::default()`
/// (the `#[serde(default)]` attribute).
pub fn de_field_default<T: Deserialize + Default>(obj: &Value, key: &str) -> Result<T, Error> {
    match obj.get(key) {
        Some(v) => T::deserialize(v).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => Ok(T::default()),
    }
}

/// Like [`de_field`], but a missing key falls back to `default()` (the
/// `#[serde(default = "path")]` attribute: the derive passes the named
/// function in).
pub fn de_field_or_else<T: Deserialize>(
    obj: &Value,
    key: &str,
    default: impl FnOnce() -> T,
) -> Result<T, Error> {
    match obj.get(key) {
        Some(v) => T::deserialize(v).map_err(|e| Error(format!("field `{key}`: {e}"))),
        None => Ok(default()),
    }
}

//! The JSON-shaped data model every `Serialize` impl lowers into.

use std::fmt;

/// A JSON-like value tree. Objects preserve insertion order (lookup is a
/// linear scan — the structs in this workspace have a handful of fields).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; order-preserving list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer (covers the full `u64` range).
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::PosInt(a), Number::NegInt(b)) | (Number::NegInt(b), Number::PosInt(a)) => {
                *b >= 0 && *a == *b as u64
            }
            _ => false,
        }
    }
}

impl Value {
    /// The object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::NegInt(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// True when this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Mutable object field lookup by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(o) => o.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) if x.is_finite() => write!(f, "{x:?}"),
            Number::Float(_) => write!(f, "null"),
        }
    }
}

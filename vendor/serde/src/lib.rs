//! Offline shim for the slice of `serde` this workspace uses.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! small value-model serializer: `Serialize` lowers a type to a JSON-like
//! [`Value`] tree and `Deserialize` rebuilds it. The derive macros (from
//! the sibling `serde_derive` stub) generate impls for plain structs,
//! tuple structs, and externally-tagged enums — the only shapes this
//! workspace derives. The textual JSON layer lives in the `serde_json`
//! stub, which prints and parses [`Value`].
//!
//! Supported attribute surface: `#[serde(default)]` and
//! `#[serde(default = "path")]` on named fields.

pub use serde_derive::{Deserialize, Serialize};

mod de;
mod ser;
mod value;

pub use de::{de_field, de_field_default, de_field_or_else, Deserialize, Error};
pub use ser::Serialize;
pub use value::{Number, Value};

#!/usr/bin/env python3
"""Perf-regression gate over BENCH_gp.json documents (schema 8).

Usage: perf_gate.py BASELINE FRESH [--max-slowdown 1.4] [--min-time 0.02]

Compares a freshly measured perf document against the committed
baseline and fails (exit 1) when any GP phase of any workload present
in both documents got more than ``--max-slowdown`` times slower, when
end-to-end throughput (edges/sec) dropped by the same factor, or when
peak RSS more than doubled (with an absolute slack for allocator
noise). Phases where both runs are faster than ``--min-time`` seconds
are skipped — microsecond rows measure scheduler noise, not code.

Schema 5 added the ``budgeted`` block per workload: the same run through
the deadline-budgeted entry point under a deadline it never hits. The
gate asserts the harness's bit-identity claim and, on the dedicated
overhead row (``BUDGET_GATE_ROW``), that the cooperative budget
checkpoints cost less than ``BUDGET_OVERHEAD_MAX`` of end-to-end time.

Schema 6 adds the ``trace`` block per workload: a rerun with the
``ppn_graph::trace`` collector armed. The gate asserts that observation
did not perturb the partition, that the gated row actually emitted
events, and — on the same dedicated row — that armed collection costs
less than ``TRACE_OVERHEAD_MAX`` of end-to-end time.

Schema 7 adds the ``memory`` block per workload: a rerun under a byte
ledger generous enough that nothing is shed. The gate asserts the
bit-identity claim, that the ledger recorded a nonzero peak with zero
shed bytes, and — on the dedicated row — that reservation accounting
costs less than ``MEMORY_OVERHEAD_MAX`` of end-to-end time.

Schema 8 adds the top-level ``repartition`` block: a drifting workload
(at most 5% of nodes perturbed per step) answered both incrementally
(warm-started refinement) and from scratch. The gate asserts the
block's shape, that every step actually warm-started, and — when the
row is full-size (``REPART_GATE_NODES`` nodes or more) — that the warm
path is at least ``REPART_MIN_SPEEDUP`` times faster with an aggregate
cut no more than ``REPART_MAX_CUT_RATIO`` of the from-scratch cut.

Runner-speed differences are normalised away with the documents'
``calibration_s`` field (a fixed deterministic spin loop timed by the
harness): fresh times are divided by the ratio of the two calibrations
before comparison, clamped to [0.2, 5] so a broken calibration cannot
mask a real regression.

The gate also asserts the schema-4 shape of the fresh document (phase
map, throughput, peak RSS, per-heuristic tournament timings, the
identical-hierarchy assertion of the coarsening comparison) — and it
refuses a baseline produced under ``PERF_INJECT_SLOWDOWN``, so the
negative-test artifact can never be committed as the new reference.
"""

import argparse
import json
import sys

RSS_FACTOR = 2.0
RSS_SLACK_BYTES = 32 * 1024 * 1024
CALIBRATION_CLAMP = (0.2, 5.0)
# The budget-checkpoint overhead is bounded on one dedicated row: big
# enough (~0.5s end-to-end) that 2% is signal, not scheduler noise.
BUDGET_GATE_ROW = "scaling-32768x16"
BUDGET_OVERHEAD_MAX = 0.02
# Armed trace collection is bounded on the same row, same reasoning.
TRACE_OVERHEAD_MAX = 0.02
# Memory-ledger reservation accounting is bounded on the same row too.
MEMORY_OVERHEAD_MAX = 0.02
# The incremental-vs-scratch claim is gated only at full size: on
# smoke-sized graphs the from-scratch solve is itself milliseconds, so
# the speedup measures constant overheads, not the algorithm.
REPART_GATE_NODES = 32768
REPART_MIN_SPEEDUP = 5.0
REPART_MAX_CUT_RATIO = 1.05


def load(path):
    with open(path) as f:
        return json.load(f)


def assert_schema(doc, path):
    """Schema-8 shape assertions (replaces the old schema-7 CI check)."""
    assert doc.get("schema") == 8, f"{path}: schema {doc.get('schema')} != 8"
    assert doc.get("workloads"), f"{path}: no scaling workloads"
    assert doc.get("hyper_workloads"), f"{path}: no hypergraph workloads"
    assert doc.get("calibration_s", 0) > 0, f"{path}: missing calibration_s"
    for w in doc["workloads"]:
        name = w.get("name", "?")
        phases = w.get("phases_s")
        assert phases, f"{path}: {name}: no phases_s"
        missing = {"coarsen", "initial", "refine_up", "end_to_end"} - phases.keys()
        assert not missing, f"{path}: {name}: phases missing {missing}"
        assert w.get("edges_per_sec", 0) > 0, f"{path}: {name}: no edges_per_sec"
        assert "peak_rss_bytes" in w, f"{path}: {name}: no peak_rss_bytes"
        budgeted = w.get("budgeted")
        assert budgeted, f"{path}: {name}: no budgeted block"
        assert budgeted.get("identical_partition") is True, (
            f"{path}: {name}: budgeted run diverged from the unbudgeted one"
        )
        assert budgeted.get("degraded") is None, (
            f"{path}: {name}: an unexpired budget reported degradation"
        )
        mem = w.get("memory")
        assert mem, f"{path}: {name}: no memory block"
        assert mem.get("identical_partition") is True, (
            f"{path}: {name}: ledgered run diverged from the unbudgeted one"
        )
        assert mem.get("degraded") is None, (
            f"{path}: {name}: a generous memory ledger reported degradation"
        )
        assert mem.get("ledger_peak_bytes", 0) > 0, (
            f"{path}: {name}: the ledger recorded no reservations"
        )
        assert mem.get("ledger_shed_bytes", 0) == 0, (
            f"{path}: {name}: a generous ledger shed bytes"
        )
        assert mem.get("ledger_peak_bytes", 0) <= mem.get("limit_bytes", 0), (
            f"{path}: {name}: ledger peak exceeds its own limit"
        )
        tr = w.get("trace")
        assert tr, f"{path}: {name}: no trace block"
        assert tr.get("identical_partition") is True, (
            f"{path}: {name}: armed trace run diverged from the plain one"
        )
        assert tr.get("events", 0) > 0, f"{path}: {name}: armed run emitted no events"
        for lvl in w.get("coarsen_levels", []):
            assert lvl.get("heuristics"), (
                f"{path}: {name} level {lvl.get('level')}: no per-heuristic timings"
            )
        cc = w.get("coarsen_compare")
        if cc is not None:  # reference comparisons are size-gated
            assert cc.get("identical_hierarchy") is True, f"{path}: {name}"
    rp = doc.get("repartition")
    assert rp, f"{path}: no repartition block"
    for field in ("name", "nodes", "k", "steps", "warm_s", "scratch_s",
                  "speedup", "cut_ratio", "migration_fraction", "warm_rate"):
        assert field in rp, f"{path}: repartition block missing {field}"
    assert rp["steps"] > 0, f"{path}: repartition ran no drift steps"
    assert rp["warm_rate"] == 1.0, (
        f"{path}: only {rp['warm_rate'] * 100:.0f}% of drift steps "
        "warm-started — the incremental path fell back to scratch"
    )
    assert 0.0 <= rp["migration_fraction"] <= 1.0, (
        f"{path}: migration fraction {rp['migration_fraction']} out of range"
    )


def check_budget_overhead(doc, min_time):
    """Bound the budget-checkpoint cost on the dedicated row.

    Returns a list of failure strings (empty when the row is absent —
    smoke documents carry smaller rows — or below the noise floor).
    """
    failures = []
    for w in doc["workloads"]:
        overhead = w["budgeted"]["overhead_frac"]
        gated = w["name"] == BUDGET_GATE_ROW and w["phases_s"]["end_to_end"] >= min_time
        verdict = ""
        if gated:
            verdict = "FAIL" if overhead > BUDGET_OVERHEAD_MAX else "ok (gated)"
            if overhead > BUDGET_OVERHEAD_MAX:
                failures.append(
                    f"{w['name']}: budget checkpoints cost "
                    f"{overhead * 100:.2f}% of end-to-end "
                    f"(limit {BUDGET_OVERHEAD_MAX * 100:.0f}%)")
        print(f"  {w['name']:<20} budget overhead {overhead * 100:+6.2f}%  {verdict}")
    return failures


def check_memory_overhead(doc, min_time):
    """Bound the ledger-accounting cost on the dedicated row."""
    failures = []
    for w in doc["workloads"]:
        mem = w["memory"]
        overhead = mem["overhead_frac"]
        gated = w["name"] == BUDGET_GATE_ROW and w["phases_s"]["end_to_end"] >= min_time
        verdict = ""
        if gated:
            verdict = "FAIL" if overhead > MEMORY_OVERHEAD_MAX else "ok (gated)"
            if overhead > MEMORY_OVERHEAD_MAX:
                failures.append(
                    f"{w['name']}: ledger accounting cost "
                    f"{overhead * 100:.2f}% of end-to-end "
                    f"(limit {MEMORY_OVERHEAD_MAX * 100:.0f}%)")
        peak_mib = mem["ledger_peak_bytes"] / (1024 * 1024)
        print(f"  {w['name']:<20} memory overhead {overhead * 100:+6.2f}%  "
              f"ledger peak {peak_mib:8.1f} MiB  {verdict}")
    return failures


def check_trace_overhead(doc, min_time):
    """Bound the armed trace-collection cost on the dedicated row."""
    failures = []
    for w in doc["workloads"]:
        tr = w["trace"]
        overhead = tr["overhead_frac"]
        gated = w["name"] == BUDGET_GATE_ROW and w["phases_s"]["end_to_end"] >= min_time
        verdict = ""
        if gated:
            verdict = "FAIL" if overhead > TRACE_OVERHEAD_MAX else "ok (gated)"
            if overhead > TRACE_OVERHEAD_MAX:
                failures.append(
                    f"{w['name']}: armed tracing cost "
                    f"{overhead * 100:.2f}% of end-to-end "
                    f"(limit {TRACE_OVERHEAD_MAX * 100:.0f}%)")
        print(f"  {w['name']:<20} trace overhead  {overhead * 100:+6.2f}%  "
              f"{tr['events']} events  {verdict}")
    return failures


def check_repartition(doc):
    """Gate the incremental-vs-scratch claim on the full-size row.

    Smoke rows are shape-checked only (the speedup on a small graph
    measures fixed costs); the 32k-node drifting row must show the
    warm path at least ``REPART_MIN_SPEEDUP``x faster with an
    aggregate cut within ``REPART_MAX_CUT_RATIO`` of from-scratch.
    """
    failures = []
    rp = doc["repartition"]
    gated = rp["nodes"] >= REPART_GATE_NODES
    verdict = ""
    if gated:
        ok = (rp["speedup"] >= REPART_MIN_SPEEDUP
              and rp["cut_ratio"] <= REPART_MAX_CUT_RATIO)
        verdict = "ok (gated)" if ok else "FAIL"
        if rp["speedup"] < REPART_MIN_SPEEDUP:
            failures.append(
                f"{rp['name']}: incremental repartitioning only "
                f"{rp['speedup']:.2f}x faster than from-scratch "
                f"(floor {REPART_MIN_SPEEDUP}x)")
        if rp["cut_ratio"] > REPART_MAX_CUT_RATIO:
            failures.append(
                f"{rp['name']}: warm-start cut {rp['cut_ratio']:.4f}x "
                f"the from-scratch cut (ceiling {REPART_MAX_CUT_RATIO}x)")
    print(f"  {rp['name']:<20} speedup {rp['speedup']:6.2f}x  "
          f"cut ratio {rp['cut_ratio']:.4f}  "
          f"migration {rp['migration_fraction']:.4f}  {verdict}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--max-slowdown", type=float, default=1.4)
    ap.add_argument("--min-time", type=float, default=0.02)
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)
    assert_schema(fresh, args.fresh)

    if base.get("injected_slowdown"):
        print(f"FAIL: baseline {args.baseline} was produced under "
              f"PERF_INJECT_SLOWDOWN {base['injected_slowdown']} — refusing "
              "an injected document as the reference")
        return 1

    print("budget-checkpoint overhead (fresh document):")
    overhead_failures = check_budget_overhead(fresh, args.min_time)
    print("memory-ledger overhead (fresh document):")
    overhead_failures += check_memory_overhead(fresh, args.min_time)
    print("armed-trace overhead (fresh document):")
    overhead_failures += check_trace_overhead(fresh, args.min_time)
    print("incremental repartitioning vs from-scratch (fresh document):")
    overhead_failures += check_repartition(fresh)
    if overhead_failures:
        print("\nperf regression gate FAILED:")
        for f in overhead_failures:
            print(f"  - {f}")
        return 1

    # schema-4..7 baselines predate the repartition block (7 also the
    # memory block, 6 the trace block, 4 the budgeted block) but their
    # timing rows compare one-to-one; anything older has no comparable
    # shape
    if base.get("schema") not in (4, 5, 6, 7, 8):
        print(f"note: baseline schema {base.get('schema')} not in (4..8) — "
              "shape-checked fresh document only, no timing comparison")
        return 0

    scale = fresh["calibration_s"] / base["calibration_s"]
    scale = max(CALIBRATION_CLAMP[0], min(CALIBRATION_CLAMP[1], scale))
    print(f"calibration: baseline {base['calibration_s']:.4f}s, "
          f"fresh {fresh['calibration_s']:.4f}s -> scale {scale:.3f}")

    base_by_name = {w["name"]: w for w in base["workloads"]}
    failures = []
    compared = 0
    for fw in fresh["workloads"]:
        bw = base_by_name.get(fw["name"])
        if bw is None:
            print(f"  {fw['name']}: not in baseline, skipped")
            continue
        for phase, bt in bw["phases_s"].items():
            ft = fw["phases_s"].get(phase)
            if ft is None:
                failures.append(f"{fw['name']}: phase {phase} vanished")
                continue
            ftn = ft / scale
            if max(bt, ftn) < args.min_time:
                continue  # noise floor
            compared += 1
            ratio = ftn / max(bt, 1e-12)
            verdict = "FAIL" if ratio > args.max_slowdown else "ok"
            print(f"  {fw['name']:<20} {phase:<12} baseline {bt:9.4f}s  "
                  f"fresh {ftn:9.4f}s  ratio {ratio:5.2f}x  {verdict}")
            if ratio > args.max_slowdown:
                failures.append(
                    f"{fw['name']}: {phase} {ratio:.2f}x slower "
                    f"(limit {args.max_slowdown}x)")

        # throughput, normalised the opposite way (slower runner -> lower
        # edges/sec), only where end-to-end time is above the noise floor
        bt = bw["phases_s"]["end_to_end"]
        ftn = fw["phases_s"]["end_to_end"] / scale
        if max(bt, ftn) >= args.min_time:
            beps, feps = bw["edges_per_sec"], fw["edges_per_sec"] * scale
            if feps < beps / args.max_slowdown:
                failures.append(
                    f"{fw['name']}: throughput {beps:.0f} -> {feps:.0f} "
                    f"edges/sec (>{args.max_slowdown}x drop)")

        brss, frss = bw["peak_rss_bytes"], fw["peak_rss_bytes"]
        if brss and frss > brss * RSS_FACTOR + RSS_SLACK_BYTES:
            failures.append(
                f"{fw['name']}: peak RSS {brss} -> {frss} bytes "
                f"(>{RSS_FACTOR}x + slack)")

    print(f"compared {compared} phase timings above the "
          f"{args.min_time}s noise floor")
    if failures:
        print("\nperf regression gate FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("perf regression gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
